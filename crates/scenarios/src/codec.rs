//! `ScenarioSpec` ⇄ TOML mapping.
//!
//! The on-disk shape (everything but `name`, `title`, `workloads`,
//! and `[axis]` is optional):
//!
//! ```toml
//! name = "high-churn"
//! title = "MOON vs Hadoop under extreme churn"
//! workloads = ["sort"]
//! panels = [""]
//! policies = ["moon-hybrid", { id = "ha-v1", label = "HA", dedicated = 3 }]
//! dedicated = 6
//! seeds = [42, 1042]        # optional; default = MOON_SEEDS env
//! horizon_secs = 28800      # optional; default = 8h (or trace horizon)
//! tables = [{ kind = "time", title = "High churn{panel}: execution time" }]
//!
//! [axis]
//! kind = "rates"            # or "correlated" / "trace-file" / "load"
//! points = [0.3, 0.5, 0.7]
//! ```
//!
//! Parse errors from the TOML layer carry line numbers; mapping errors
//! name the offending key.

use crate::spec::{
    ArrivalSpec, Axis, CorrelatedAxis, CorrelatedKnob, JobStreamSpec, LoadAxis, PolicyRef,
    ScenarioError, ScenarioSpec, TableKind, TableSpec, TelemetrySpec,
};
use crate::toml::{self, Table, Value};

fn err(message: impl Into<String>) -> ScenarioError {
    ScenarioError::msg(message)
}

fn want_str(v: &Value, key: &str) -> Result<String, ScenarioError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| err(format!("`{key}` must be a string, got {}", v.type_name())))
}

fn want_f64(v: &Value, key: &str) -> Result<f64, ScenarioError> {
    v.as_f64()
        .ok_or_else(|| err(format!("`{key}` must be a number, got {}", v.type_name())))
}

fn want_u64(v: &Value, key: &str) -> Result<u64, ScenarioError> {
    match *v {
        Value::Int(i) if i >= 0 => Ok(i as u64),
        _ => Err(err(format!(
            "`{key}` must be a non-negative integer, got {}",
            v.type_name()
        ))),
    }
}

fn want_bool(v: &Value, key: &str) -> Result<bool, ScenarioError> {
    match *v {
        Value::Bool(b) => Ok(b),
        _ => Err(err(format!(
            "`{key}` must be a boolean, got {}",
            v.type_name()
        ))),
    }
}

fn want_array<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], ScenarioError> {
    match v {
        Value::Array(a) => Ok(a),
        _ => Err(err(format!(
            "`{key}` must be an array, got {}",
            v.type_name()
        ))),
    }
}

fn str_array(t: &Table, key: &str) -> Result<Option<Vec<String>>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => want_array(v, key)?
            .iter()
            .map(|item| want_str(item, key))
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
    }
}

fn f64_array(v: &Value, key: &str) -> Result<Vec<f64>, ScenarioError> {
    want_array(v, key)?
        .iter()
        .map(|x| want_f64(x, key))
        .collect()
}

fn parse_policy(v: &Value) -> Result<PolicyRef, ScenarioError> {
    match v {
        Value::Str(id) => Ok(PolicyRef::new(id.clone())),
        Value::Table(t) => {
            let id = t
                .get("id")
                .ok_or_else(|| err("policy entry is missing `id`"))?;
            let mut p = PolicyRef::new(want_str(id, "policies[].id")?);
            if let Some(l) = t.get("label") {
                p.label = Some(want_str(l, "policies[].label")?);
            }
            if let Some(d) = t.get("dedicated") {
                p.dedicated = Some(want_u64(d, "policies[].dedicated")? as u32);
            }
            for (k, _) in t.iter() {
                if !matches!(k, "id" | "label" | "dedicated") {
                    return Err(err(format!("unknown policy entry key `{k}`")));
                }
            }
            Ok(p)
        }
        other => Err(err(format!(
            "`policies` entries must be strings or inline tables, got {}",
            other.type_name()
        ))),
    }
}

fn parse_table_spec(v: &Value) -> Result<TableSpec, ScenarioError> {
    let t = match v {
        Value::Table(t) => t,
        other => {
            return Err(err(format!(
                "`tables` entries must be inline tables, got {}",
                other.type_name()
            )))
        }
    };
    let kind = match t.get("kind") {
        Some(v) => want_str(v, "tables[].kind")?,
        None => return Err(err("table entry is missing `kind`")),
    };
    let kind = match kind.as_str() {
        "time" => TableKind::Time,
        "duplicates" => TableKind::Duplicates,
        "profile" => TableKind::Profile,
        "detail" => TableKind::Detail,
        "catalog" => TableKind::Catalog,
        "jobs" => TableKind::Jobs,
        "saturation" => TableKind::Saturation,
        other => {
            return Err(err(format!(
                "unknown table kind `{other}` \
                 (time / duplicates / profile / detail / catalog / jobs / saturation)"
            )))
        }
    };
    let title = match t.get("title") {
        Some(v) => want_str(v, "tables[].title")?,
        None => return Err(err("table entry is missing `title`")),
    };
    Ok(TableSpec { kind, title })
}

fn parse_axis(t: &Table) -> Result<Axis, ScenarioError> {
    let kind = match t.get("kind") {
        Some(v) => want_str(v, "axis.kind")?,
        None => return Err(err("`[axis]` is missing `kind`")),
    };
    match kind.as_str() {
        "rates" => {
            let points = t
                .get("points")
                .ok_or_else(|| err("rates axis is missing `points`"))?;
            Ok(Axis::Rates(f64_array(points, "axis.points")?))
        }
        "correlated" => {
            let points = t
                .get("points")
                .ok_or_else(|| err("correlated axis is missing `points`"))?;
            let knob = match t.get("knob") {
                Some(v) => match want_str(v, "axis.knob")?.as_str() {
                    "sessions_per_hour" => CorrelatedKnob::SessionsPerHour,
                    "session_fraction" => CorrelatedKnob::SessionFraction,
                    other => {
                        return Err(err(format!(
                            "unknown correlated knob `{other}` \
                             (sessions_per_hour / session_fraction)"
                        )))
                    }
                },
                None => CorrelatedKnob::SessionsPerHour,
            };
            let get_f = |key: &str, default: f64| -> Result<f64, ScenarioError> {
                t.get(key).map_or(Ok(default), |v| want_f64(v, key))
            };
            Ok(Axis::Correlated(CorrelatedAxis {
                points: f64_array(points, "axis.points")?,
                knob,
                sessions_per_hour: get_f("sessions_per_hour", 1.0)?,
                session_fraction: get_f("session_fraction", 0.3)?,
                background: get_f("background", 0.2)?,
                diurnal: t
                    .get("diurnal")
                    .map_or(Ok(true), |v| want_bool(v, "axis.diurnal"))?,
            }))
        }
        "trace-file" => {
            let path = t
                .get("path")
                .ok_or_else(|| err("trace-file axis is missing `path`"))?;
            Ok(Axis::TraceFile {
                path: want_str(path, "axis.path")?,
            })
        }
        "load" => {
            let points = t
                .get("points")
                .ok_or_else(|| err("load axis is missing `points`"))?;
            let rate = match t.get("rate") {
                Some(v) => want_f64(v, "axis.rate")?,
                None => return Err(err("load axis is missing `rate`")),
            };
            let n_volatile = t
                .get("n_volatile")
                .map(|v| want_u64(v, "axis.n_volatile").map(|n| n as u32))
                .transpose()?;
            let points = f64_array(points, "axis.points")?;
            for &p in &points {
                if !(p.is_finite() && p > 0.0) {
                    return Err(err(format!(
                        "`axis.points` of a load axis must be positive, got {p}"
                    )));
                }
            }
            Ok(Axis::Load(LoadAxis {
                points,
                rate,
                n_volatile,
            }))
        }
        other => Err(err(format!(
            "unknown axis kind `{other}` (rates / correlated / trace-file / load)"
        ))),
    }
}

/// Parse the `[jobs]` table: the multi-job arrival stream.
fn parse_jobs(t: &Table) -> Result<JobStreamSpec, ScenarioError> {
    let kind = match t.get("kind") {
        Some(v) => want_str(v, "jobs.kind")?,
        None => return Err(err("`[jobs]` is missing `kind`")),
    };
    let want_key_f64 = |key: &str| -> Result<f64, ScenarioError> {
        t.get(key)
            .ok_or_else(|| err(format!("{kind} jobs stream is missing `{key}`")))
            .and_then(|v| want_f64(v, key))
    };
    let want_key_u32 = |key: &str| -> Result<u32, ScenarioError> {
        t.get(key)
            .ok_or_else(|| err(format!("{kind} jobs stream is missing `{key}`")))
            .and_then(|v| want_u64(v, key).map(|x| x as u32))
    };
    // Durations and rates must be finite and non-negative here, with
    // the key named — downstream they become `SimDuration`s, where a
    // negative value would only surface as a contextless debug panic
    // (or a silent clamp in release).
    let nonneg = |x: f64, key: &str| -> Result<f64, ScenarioError> {
        if x.is_finite() && x >= 0.0 {
            Ok(x)
        } else {
            Err(err(format!(
                "`jobs.{key}` must be a finite non-negative number, got {x}"
            )))
        }
    };
    let arrivals = match kind.as_str() {
        "batch" => {
            let offsets = t
                .get("offsets_secs")
                .ok_or_else(|| err("batch jobs stream is missing `offsets_secs`"))?;
            let offsets_secs = f64_array(offsets, "jobs.offsets_secs")?;
            if offsets_secs.is_empty() {
                return Err(err("`jobs.offsets_secs` must not be empty"));
            }
            for &o in &offsets_secs {
                nonneg(o, "offsets_secs")?;
            }
            ArrivalSpec::Batch { offsets_secs }
        }
        "poisson" => {
            let rate_per_hour = nonneg(want_key_f64("rate_per_hour")?, "rate_per_hour")?;
            if rate_per_hour == 0.0 {
                return Err(err("`jobs.rate_per_hour` must be positive"));
            }
            ArrivalSpec::Poisson {
                rate_per_hour,
                count: want_key_u32("count")?,
            }
        }
        "closed" => ArrivalSpec::Closed {
            clients: want_key_u32("clients")?,
            jobs_per_client: want_key_u32("jobs_per_client")?,
            think_secs: nonneg(want_key_f64("think_secs")?, "think_secs")?,
        },
        other => {
            return Err(err(format!(
                "unknown jobs stream kind `{other}` (batch / poisson / closed)"
            )))
        }
    };
    let workloads = str_array(t, "workloads")?.unwrap_or_default();
    let u32_list = |key: &str| -> Result<Vec<u32>, ScenarioError> {
        match t.get(key) {
            None => Ok(Vec::new()),
            Some(v) => want_array(v, key)?
                .iter()
                .map(|x| want_u64(x, &format!("jobs.{key}")).map(|n| n as u32))
                .collect(),
        }
    };
    let deadlines_secs = match t.get("deadlines_secs") {
        None => Vec::new(),
        Some(v) => {
            let list = f64_array(v, "jobs.deadlines_secs")?;
            for &d in &list {
                nonneg(d, "deadlines_secs")?;
            }
            list
        }
    };
    let priorities = match t.get("priorities") {
        None => Vec::new(),
        Some(v) => want_array(v, "jobs.priorities")?
            .iter()
            .map(|x| match *x {
                Value::Int(i) if i32::try_from(i).is_ok() => Ok(i),
                _ => Err(err(format!(
                    "`jobs.priorities` entries must be 32-bit integers, got {}",
                    x.type_name()
                ))),
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let tenants = u32_list("tenants")?;
    let tenant_weights = u32_list("tenant_weights")?;
    if tenant_weights.contains(&0) {
        return Err(err("`jobs.tenant_weights` entries must be positive"));
    }
    let tenant_min_slots = u32_list("tenant_min_slots")?;
    for (k, _) in t.iter() {
        let known = matches!(
            k,
            "kind"
                | "workloads"
                | "offsets_secs"
                | "rate_per_hour"
                | "count"
                | "clients"
                | "jobs_per_client"
                | "think_secs"
                | "deadlines_secs"
                | "priorities"
                | "tenants"
                | "tenant_weights"
                | "tenant_min_slots"
        );
        if !known {
            return Err(err(format!("unknown jobs stream key `{k}`")));
        }
    }
    let spec = JobStreamSpec {
        arrivals,
        workloads,
        deadlines_secs,
        priorities,
        tenants,
        tenant_weights,
        tenant_min_slots,
    };
    if spec.total_jobs() == 0 {
        return Err(err("jobs stream would inject zero jobs"));
    }
    Ok(spec)
}

/// Parse the `[telemetry]` table: gauge cadence and span capacity,
/// defaulting any omitted key (so `[telemetry]` alone turns recording
/// on with the standard settings).
fn parse_telemetry(t: &Table) -> Result<TelemetrySpec, ScenarioError> {
    let defaults = TelemetrySpec::default();
    let sample_every_secs = match t.get("sample_every_secs") {
        None => defaults.sample_every_secs,
        Some(v) => {
            let x = want_f64(v, "telemetry.sample_every_secs")?;
            if !(x.is_finite() && x > 0.0) {
                return Err(err(format!(
                    "`telemetry.sample_every_secs` must be positive, got {x}"
                )));
            }
            x
        }
    };
    let span_capacity = match t.get("span_capacity") {
        None => defaults.span_capacity,
        Some(v) => want_u64(v, "telemetry.span_capacity")? as u32,
    };
    for (k, _) in t.iter() {
        if !matches!(k, "sample_every_secs" | "span_capacity") {
            return Err(err(format!("unknown telemetry key `{k}`")));
        }
    }
    Ok(TelemetrySpec {
        sample_every_secs,
        span_capacity,
    })
}

/// Map a parsed TOML root table to a spec.
pub fn from_toml(root: &Table) -> Result<ScenarioSpec, ScenarioError> {
    let name = match root.get("name") {
        Some(v) => want_str(v, "name")?,
        None => return Err(err("scenario is missing `name`")),
    };
    let title = match root.get("title") {
        Some(v) => want_str(v, "title")?,
        None => return Err(err("scenario is missing `title`")),
    };
    let workloads =
        str_array(root, "workloads")?.ok_or_else(|| err("scenario is missing `workloads`"))?;
    if workloads.is_empty() {
        return Err(err("`workloads` must not be empty"));
    }
    let panels = match str_array(root, "panels")? {
        Some(p) => {
            if p.len() != workloads.len() {
                return Err(err(format!(
                    "`panels` has {} entries but `workloads` has {}",
                    p.len(),
                    workloads.len()
                )));
            }
            p
        }
        None => vec![String::new(); workloads.len()],
    };
    let policies = match root.get("policies") {
        None => Vec::new(),
        Some(v) => want_array(v, "policies")?
            .iter()
            .map(parse_policy)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let axis = match root.get("axis") {
        Some(Value::Table(t)) => parse_axis(t)?,
        Some(other) => {
            return Err(err(format!(
                "`axis` must be a `[axis]` table, got {}",
                other.type_name()
            )))
        }
        None => return Err(err("scenario is missing the `[axis]` table")),
    };
    let dedicated = root
        .get("dedicated")
        .map_or(Ok(6), |v| want_u64(v, "dedicated"))? as u32;
    let n_volatile = root
        .get("n_volatile")
        .map(|v| want_u64(v, "n_volatile").map(|n| n as u32))
        .transpose()?;
    let seeds = match root.get("seeds") {
        None => None,
        Some(v) => {
            let list = want_array(v, "seeds")?
                .iter()
                .map(|x| want_u64(x, "seeds"))
                .collect::<Result<Vec<_>, _>>()?;
            if list.is_empty() {
                return Err(err(
                    "`seeds` must not be empty (omit it to use the MOON_SEEDS default)",
                ));
            }
            Some(list)
        }
    };
    let horizon_secs = root
        .get("horizon_secs")
        .map(|v| want_u64(v, "horizon_secs"))
        .transpose()?;
    let jobs = match root.get("jobs") {
        None => None,
        Some(Value::Table(t)) => Some(parse_jobs(t)?),
        Some(other) => {
            return Err(err(format!(
                "`jobs` must be a `[jobs]` table, got {}",
                other.type_name()
            )))
        }
    };
    let telemetry = match root.get("telemetry") {
        None => None,
        Some(Value::Table(t)) => Some(parse_telemetry(t)?),
        Some(other) => {
            return Err(err(format!(
                "`telemetry` must be a `[telemetry]` table, got {}",
                other.type_name()
            )))
        }
    };
    let tables = match root.get("tables") {
        None => vec![TableSpec {
            kind: TableKind::Time,
            title: format!("{title}{{panel}}"),
        }],
        Some(v) => want_array(v, "tables")?
            .iter()
            .map(parse_table_spec)
            .collect::<Result<Vec<_>, _>>()?,
    };
    for (k, _) in root.iter() {
        if !matches!(
            k,
            "name"
                | "title"
                | "workloads"
                | "panels"
                | "policies"
                | "axis"
                | "dedicated"
                | "n_volatile"
                | "seeds"
                | "horizon_secs"
                | "jobs"
                | "telemetry"
                | "tables"
        ) {
            return Err(err(format!("unknown scenario key `{k}`")));
        }
    }
    Ok(ScenarioSpec {
        name,
        title,
        workloads,
        panels,
        policies,
        axis,
        dedicated,
        n_volatile,
        seeds,
        horizon_secs,
        jobs,
        telemetry,
        tables,
    })
}

/// Parse a scenario from TOML text (line-numbered syntax errors,
/// key-named mapping errors).
pub fn from_str(text: &str) -> Result<ScenarioSpec, ScenarioError> {
    let root = toml::parse(text)?;
    from_toml(&root)
}

/// Load a scenario from a `.toml` file.
pub fn load_file(path: &std::path::Path) -> Result<ScenarioSpec, ScenarioError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read {}: {e}", path.display())))?;
    from_str(&text)
}

fn policy_to_toml(p: &PolicyRef) -> Value {
    if p.label.is_none() && p.dedicated.is_none() {
        return Value::Str(p.id.clone());
    }
    let mut t = Table::new();
    t.set("id", Value::Str(p.id.clone()));
    if let Some(l) = &p.label {
        t.set("label", Value::Str(l.clone()));
    }
    if let Some(d) = p.dedicated {
        t.set("dedicated", Value::Int(d as i64));
    }
    Value::Table(t)
}

/// Map a spec to a TOML root table (the inverse of [`from_toml`]).
pub fn to_toml(spec: &ScenarioSpec) -> Table {
    let mut root = Table::new();
    root.set("name", Value::Str(spec.name.clone()));
    root.set("title", Value::Str(spec.title.clone()));
    root.set(
        "workloads",
        Value::Array(spec.workloads.iter().cloned().map(Value::Str).collect()),
    );
    root.set(
        "panels",
        Value::Array(spec.panels.iter().cloned().map(Value::Str).collect()),
    );
    root.set(
        "policies",
        Value::Array(spec.policies.iter().map(policy_to_toml).collect()),
    );
    root.set("dedicated", Value::Int(spec.dedicated as i64));
    if let Some(n) = spec.n_volatile {
        root.set("n_volatile", Value::Int(n as i64));
    }
    if let Some(seeds) = &spec.seeds {
        root.set(
            "seeds",
            Value::Array(seeds.iter().map(|&s| Value::Int(s as i64)).collect()),
        );
    }
    if let Some(h) = spec.horizon_secs {
        root.set("horizon_secs", Value::Int(h as i64));
    }
    if let Some(jobs) = &spec.jobs {
        let mut j = Table::new();
        match &jobs.arrivals {
            ArrivalSpec::Batch { offsets_secs } => {
                j.set("kind", Value::Str("batch".into()));
                j.set(
                    "offsets_secs",
                    Value::Array(offsets_secs.iter().map(|&o| Value::Float(o)).collect()),
                );
            }
            ArrivalSpec::Poisson {
                rate_per_hour,
                count,
            } => {
                j.set("kind", Value::Str("poisson".into()));
                j.set("rate_per_hour", Value::Float(*rate_per_hour));
                j.set("count", Value::Int(*count as i64));
            }
            ArrivalSpec::Closed {
                clients,
                jobs_per_client,
                think_secs,
            } => {
                j.set("kind", Value::Str("closed".into()));
                j.set("clients", Value::Int(*clients as i64));
                j.set("jobs_per_client", Value::Int(*jobs_per_client as i64));
                j.set("think_secs", Value::Float(*think_secs));
            }
        }
        if !jobs.workloads.is_empty() {
            j.set(
                "workloads",
                Value::Array(jobs.workloads.iter().cloned().map(Value::Str).collect()),
            );
        }
        // Scheduling metadata serializes only when present, so specs
        // without it keep their historical byte-identical TOML form.
        if !jobs.deadlines_secs.is_empty() {
            j.set(
                "deadlines_secs",
                Value::Array(
                    jobs.deadlines_secs
                        .iter()
                        .map(|&d| Value::Float(d))
                        .collect(),
                ),
            );
        }
        if !jobs.priorities.is_empty() {
            j.set(
                "priorities",
                Value::Array(jobs.priorities.iter().map(|&p| Value::Int(p)).collect()),
            );
        }
        let u32_list =
            |list: &[u32]| Value::Array(list.iter().map(|&x| Value::Int(x as i64)).collect());
        if !jobs.tenants.is_empty() {
            j.set("tenants", u32_list(&jobs.tenants));
        }
        if !jobs.tenant_weights.is_empty() {
            j.set("tenant_weights", u32_list(&jobs.tenant_weights));
        }
        if !jobs.tenant_min_slots.is_empty() {
            j.set("tenant_min_slots", u32_list(&jobs.tenant_min_slots));
        }
        root.set("jobs", Value::Table(j));
    }
    if let Some(tel) = &spec.telemetry {
        let mut t = Table::new();
        t.set("sample_every_secs", Value::Float(tel.sample_every_secs));
        t.set("span_capacity", Value::Int(tel.span_capacity as i64));
        root.set("telemetry", Value::Table(t));
    }
    root.set(
        "tables",
        Value::Array(
            spec.tables
                .iter()
                .map(|t| {
                    let mut e = Table::new();
                    e.set("kind", Value::Str(t.kind.as_str().into()));
                    e.set("title", Value::Str(t.title.clone()));
                    Value::Table(e)
                })
                .collect(),
        ),
    );
    let mut axis = Table::new();
    match &spec.axis {
        Axis::Rates(points) => {
            axis.set("kind", Value::Str("rates".into()));
            axis.set(
                "points",
                Value::Array(points.iter().map(|&p| Value::Float(p)).collect()),
            );
        }
        Axis::Correlated(c) => {
            axis.set("kind", Value::Str("correlated".into()));
            axis.set(
                "points",
                Value::Array(c.points.iter().map(|&p| Value::Float(p)).collect()),
            );
            axis.set("knob", Value::Str(c.knob.as_str().into()));
            axis.set("sessions_per_hour", Value::Float(c.sessions_per_hour));
            axis.set("session_fraction", Value::Float(c.session_fraction));
            axis.set("background", Value::Float(c.background));
            axis.set("diurnal", Value::Bool(c.diurnal));
        }
        Axis::TraceFile { path } => {
            axis.set("kind", Value::Str("trace-file".into()));
            axis.set("path", Value::Str(path.clone()));
        }
        Axis::Load(l) => {
            axis.set("kind", Value::Str("load".into()));
            axis.set(
                "points",
                Value::Array(l.points.iter().map(|&p| Value::Float(p)).collect()),
            );
            axis.set("rate", Value::Float(l.rate));
            if let Some(n) = l.n_volatile {
                axis.set("n_volatile", Value::Int(n as i64));
            }
        }
    }
    root.set("axis", Value::Table(axis));
    root
}

/// Serialize a spec to TOML text. `from_str(&to_string(s)) == s`.
pub fn to_string(spec: &ScenarioSpec) -> String {
    toml::serialize(&to_toml(spec))
}

/// Deterministic campaign key: a 64-bit FNV-1a hash (hex) over the
/// spec's canonical TOML serialization, the effective seed list, and
/// the quick-mode flag — everything that shapes the expanded grid.
///
/// Two invocations agree on the key iff they would run the same cells
/// with the same inputs, which is the precondition for checkpoint
/// resume: `moon-cli run --resume` refuses a checkpoint whose key
/// differs. Canonical TOML (not the user's file bytes) feeds the hash,
/// so formatting and key order don't matter; `MOON_QUICK` and the seed
/// list do, since they change cluster shrinking and the grid itself.
pub fn content_key(spec: &ScenarioSpec, seeds: &[u64], quick: bool) -> String {
    // FNV-1a, 64-bit: tiny, stable across platforms and releases —
    // unlike `DefaultHasher`, whose output is explicitly unspecified.
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(to_string(spec).as_bytes());
    eat(b"\0seeds");
    for &s in seeds {
        eat(&s.to_le_bytes());
    }
    eat(b"\0quick");
    eat(&[quick as u8]);
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn content_key_is_stable_and_input_sensitive() {
        let spec = registry::find("high-churn").unwrap();
        let key = content_key(&spec, &[42, 1042], false);
        assert_eq!(key.len(), 16);
        assert!(key.chars().all(|c| c.is_ascii_hexdigit()));
        // Deterministic across calls…
        assert_eq!(key, content_key(&spec, &[42, 1042], false));
        // …and sensitive to each input that shapes the grid.
        assert_ne!(key, content_key(&spec, &[42], false));
        assert_ne!(key, content_key(&spec, &[1042, 42], false));
        assert_ne!(key, content_key(&spec, &[42, 1042], true));
        let mut other = spec.clone();
        other.horizon_secs = Some(other.horizon_secs.unwrap_or(28_800) + 1);
        assert_ne!(key, content_key(&other, &[42, 1042], false));
        // Canonicalization: a spec reparsed from its own serialization
        // keys identically (formatting of the source file is irrelevant).
        let reparsed = from_str(&to_string(&spec)).unwrap();
        assert_eq!(key, content_key(&reparsed, &[42, 1042], false));
    }

    #[test]
    fn every_builtin_round_trips() {
        for spec in registry::all() {
            let text = to_string(&spec);
            let back =
                from_str(&text).unwrap_or_else(|e| panic!("{}: {e}\n---\n{text}", spec.name));
            assert_eq!(back, spec, "round-trip drift for `{}`", spec.name);
        }
    }

    #[test]
    fn minimal_spec_gets_defaults() {
        let text = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    [axis]\nkind = \"rates\"\npoints = [0.3]\n";
        let s = from_str(text).unwrap();
        assert_eq!(s.dedicated, 6);
        assert_eq!(s.panels, vec![String::new()]);
        assert!(s.policies.is_empty());
        assert!(s.seeds.is_none());
        assert_eq!(s.tables.len(), 1);
        assert_eq!(s.tables[0].kind, TableKind::Time);
    }

    #[test]
    fn mapping_errors_name_their_key() {
        let e = from_str("name = \"x\"\n").unwrap_err();
        assert!(e.message.contains("missing `title`"), "{e}");

        let text = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    panels = [\"a\", \"b\"]\n[axis]\nkind = \"rates\"\npoints = [0.3]\n";
        let e = from_str(text).unwrap_err();
        assert!(e.message.contains("`panels` has 2"), "{e}");

        let text = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    mystery = 1\n[axis]\nkind = \"rates\"\npoints = [0.3]\n";
        let e = from_str(text).unwrap_err();
        assert!(e.message.contains("unknown scenario key `mystery`"), "{e}");

        let text = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    [axis]\nkind = \"sideways\"\n";
        let e = from_str(text).unwrap_err();
        assert!(e.message.contains("unknown axis kind `sideways`"), "{e}");

        let text = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    seeds = []\n[axis]\nkind = \"rates\"\npoints = [0.3]\n";
        let e = from_str(text).unwrap_err();
        assert!(e.message.contains("`seeds` must not be empty"), "{e}");
    }

    #[test]
    fn load_axis_parses_and_round_trips() {
        let text = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    [axis]\nkind = \"load\"\npoints = [30.0, 60.0]\nrate = 0.3\n\
                    n_volatile = 1000\n\
                    [jobs]\nkind = \"poisson\"\nrate_per_hour = 60.0\ncount = 8\n";
        let s = from_str(text).unwrap();
        match &s.axis {
            Axis::Load(l) => {
                assert_eq!(l.points, vec![30.0, 60.0]);
                assert_eq!(l.rate, 0.3);
                assert_eq!(l.n_volatile, Some(1000));
            }
            other => panic!("expected a load axis, got {other:?}"),
        }
        assert_eq!(s.n_cols(), 2);
        assert_eq!(from_str(&to_string(&s)).unwrap(), s);

        // n_volatile is optional (default cluster shape).
        let text = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    [axis]\nkind = \"load\"\npoints = [15.0]\nrate = 0.5\n\
                    [jobs]\nkind = \"poisson\"\nrate_per_hour = 15.0\ncount = 4\n";
        let s = from_str(text).unwrap();
        assert_eq!(
            s.axis,
            Axis::Load(LoadAxis {
                points: vec![15.0],
                rate: 0.5,
                n_volatile: None,
            })
        );
        assert_eq!(from_str(&to_string(&s)).unwrap(), s);
    }

    #[test]
    fn load_axis_errors_name_the_problem() {
        let base = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n";
        let e = from_str(&format!("{base}[axis]\nkind = \"load\"\nrate = 0.3\n")).unwrap_err();
        assert!(e.message.contains("missing `points`"), "{e}");
        let e = from_str(&format!("{base}[axis]\nkind = \"load\"\npoints = [30.0]\n")).unwrap_err();
        assert!(e.message.contains("missing `rate`"), "{e}");
        let e = from_str(&format!(
            "{base}[axis]\nkind = \"load\"\npoints = [30.0, -5.0]\nrate = 0.3\n"
        ))
        .unwrap_err();
        assert!(e.message.contains("must be positive"), "{e}");
    }

    #[test]
    fn jobs_stream_parses_and_round_trips() {
        let text = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    [axis]\nkind = \"rates\"\npoints = [0.3]\n\
                    [jobs]\nkind = \"poisson\"\nrate_per_hour = 120.0\ncount = 8\n";
        let s = from_str(text).unwrap();
        let jobs = s.jobs.as_ref().expect("stream parsed");
        assert_eq!(jobs.total_jobs(), 8);
        assert!(jobs.workloads.is_empty());
        let back = from_str(&to_string(&s)).unwrap();
        assert_eq!(back, s);

        let text = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    [axis]\nkind = \"rates\"\npoints = [0.3]\n\
                    [jobs]\nkind = \"closed\"\nclients = 2\njobs_per_client = 3\n\
                    think_secs = 45.5\nworkloads = [\"sort\", \"quick\"]\n";
        let s = from_str(text).unwrap();
        let jobs = s.jobs.as_ref().unwrap();
        assert_eq!(jobs.total_jobs(), 6);
        assert_eq!(jobs.workloads, vec!["sort", "quick"]);
        assert_eq!(from_str(&to_string(&s)).unwrap(), s);
    }

    #[test]
    fn jobs_stream_errors_name_the_problem() {
        let base = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    [axis]\nkind = \"rates\"\npoints = [0.3]\n";
        let e = from_str(&format!("{base}[jobs]\nkind = \"sideways\"\n")).unwrap_err();
        assert!(e.message.contains("unknown jobs stream kind"), "{e}");

        let e = from_str(&format!("{base}[jobs]\nkind = \"poisson\"\ncount = 3\n")).unwrap_err();
        assert!(e.message.contains("missing `rate_per_hour`"), "{e}");

        let e = from_str(&format!("{base}[jobs]\nkind = \"batch\"\n")).unwrap_err();
        assert!(e.message.contains("missing `offsets_secs`"), "{e}");

        let e = from_str(&format!(
            "{base}[jobs]\nkind = \"batch\"\noffsets_secs = []\n"
        ))
        .unwrap_err();
        assert!(e.message.contains("must not be empty"), "{e}");

        let e = from_str(&format!(
            "{base}[jobs]\nkind = \"poisson\"\nrate_per_hour = 1.0\ncount = 2\nmystery = 1\n"
        ))
        .unwrap_err();
        assert!(
            e.message.contains("unknown jobs stream key `mystery`"),
            "{e}"
        );

        let e = from_str(&format!(
            "{base}[jobs]\nkind = \"closed\"\nclients = 0\njobs_per_client = 3\nthink_secs = 1.0\n"
        ))
        .unwrap_err();
        assert!(e.message.contains("zero jobs"), "{e}");

        // Negative durations/rates must fail at parse time with the key
        // named, not as a contextless SimDuration panic downstream.
        let e = from_str(&format!(
            "{base}[jobs]\nkind = \"batch\"\noffsets_secs = [0.0, -10.0]\n"
        ))
        .unwrap_err();
        assert!(e.message.contains("`jobs.offsets_secs`"), "{e}");

        let e = from_str(&format!(
            "{base}[jobs]\nkind = \"poisson\"\nrate_per_hour = -1.0\ncount = 2\n"
        ))
        .unwrap_err();
        assert!(e.message.contains("`jobs.rate_per_hour`"), "{e}");

        let e = from_str(&format!(
            "{base}[jobs]\nkind = \"poisson\"\nrate_per_hour = 0.0\ncount = 2\n"
        ))
        .unwrap_err();
        assert!(e.message.contains("must be positive"), "{e}");

        let e = from_str(&format!(
            "{base}[jobs]\nkind = \"closed\"\nclients = 1\njobs_per_client = 2\nthink_secs = -5.0\n"
        ))
        .unwrap_err();
        assert!(e.message.contains("`jobs.think_secs`"), "{e}");

        let e = from_str(
            "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\njobs = 3\n\
             [axis]\nkind = \"rates\"\npoints = [0.3]\n",
        )
        .unwrap_err();
        assert!(e.message.contains("`jobs` must be a `[jobs]` table"), "{e}");
    }

    #[test]
    fn telemetry_knob_parses_defaults_and_round_trips() {
        let base = "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\n\
                    [axis]\nkind = \"rates\"\npoints = [0.3]\n";

        // Absent: telemetry stays off.
        assert!(from_str(base).unwrap().telemetry.is_none());

        // A bare [telemetry] table turns recording on with defaults.
        let s = from_str(&format!("{base}[telemetry]\n")).unwrap();
        assert_eq!(s.telemetry, Some(TelemetrySpec::default()));

        // Explicit knobs parse, convert, and round-trip.
        let s = from_str(&format!(
            "{base}[telemetry]\nsample_every_secs = 5.0\nspan_capacity = 128\n"
        ))
        .unwrap();
        let tel = s.telemetry.as_ref().unwrap();
        assert_eq!(tel.sample_every_secs, 5.0);
        assert_eq!(tel.span_capacity, 128);
        let cfg = tel.to_config();
        assert_eq!(cfg.sample_every, simkit::SimDuration::from_secs(5));
        assert_eq!(cfg.span_capacity, 128);
        assert_eq!(from_str(&to_string(&s)).unwrap(), s);

        // Errors name the key.
        let e = from_str(&format!("{base}[telemetry]\nsample_every_secs = 0.0\n")).unwrap_err();
        assert!(e.message.contains("`telemetry.sample_every_secs`"), "{e}");
        let e = from_str(&format!("{base}[telemetry]\nmystery = 1\n")).unwrap_err();
        assert!(e.message.contains("unknown telemetry key `mystery`"), "{e}");
        // A scalar at root (before any table header) is rejected.
        let e = from_str(
            "name = \"x\"\ntitle = \"t\"\nworkloads = [\"quick\"]\ntelemetry = 3\n\
             [axis]\nkind = \"rates\"\npoints = [0.3]\n",
        )
        .unwrap_err();
        assert!(e.message.contains("`[telemetry]` table"), "{e}");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = from_str("name = \"x\"\ntitle = @\n").unwrap_err();
        assert_eq!(e.line, Some(2), "{e}");
        assert!(e.to_string().starts_with("line 2:"), "{e}");
    }
}
