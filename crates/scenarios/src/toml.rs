//! A small, self-contained TOML-subset parser and serializer.
//!
//! The build environment has no crate registry (see DESIGN.md §4), so
//! scenario files are parsed by this vendored-deps-only implementation
//! instead of the real `toml` crate. It covers exactly the subset the
//! [`ScenarioSpec`](crate::ScenarioSpec) codec emits, and every parse
//! error names its 1-based line:
//!
//! - comments (`#` to end of line) and blank lines
//! - `key = value` pairs (bare keys: `[A-Za-z0-9_-]+`, or quoted)
//! - one level of `[section]` tables
//! - values: basic `"strings"` (with `\" \\ \n \t \r \u{XXXX}`
//!   escapes), integers, floats, booleans, arrays (multi-line allowed),
//!   and inline tables `{ k = v, ... }`
//!
//! Not supported (rejected with an error, never misparsed): dotted
//! keys, array-of-tables `[[x]]`, nested `[a.b]` sections, literal
//! `'...'` strings, multi-line strings, and datetimes. Swapping in the
//! real `toml` crate when a registry is reachable is a codec-local
//! change.

use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A (sub-)table: inline `{...}` or a `[section]`.
    Table(Table),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// The value as an `f64` if it is numeric (int or float).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// An order-preserving table (insertion order is serialization order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    entries: Vec<(String, Value)>,
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Insert a key (error if it already exists — TOML forbids dupes).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Result<(), String> {
        let key = key.into();
        if self.get(&key).is_some() {
            return Err(format!("duplicate key `{key}`"));
        }
        self.entries.push((key, value));
        Ok(())
    }

    /// Insert, panicking on duplicates — for building known-good tables.
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        self.insert(key, value).expect("duplicate key");
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> TomlError {
        TomlError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skip spaces/tabs and comments on the current line (not newlines).
    fn skip_inline_ws(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip all whitespace including newlines and comments (inside
    /// arrays and between top-level statements).
    fn skip_all_ws(&mut self) {
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'\n') {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// After a value or header, require end-of-line (or EOF).
    fn expect_eol(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(format!(
                "unexpected `{}` after value (one statement per line)",
                c as char
            ))),
        }
    }

    fn parse_document(&mut self) -> Result<Table, TomlError> {
        let mut root = Table::new();
        let mut current: Option<(String, Table, usize)> = None; // (name, table, decl line)
        loop {
            self.skip_all_ws();
            match self.peek() {
                None => break,
                Some(b'[') => {
                    // Close out the previous section.
                    if let Some((name, table, line)) = current.take() {
                        root.insert(name, Value::Table(table))
                            .map_err(|m| TomlError { line, message: m })?;
                    }
                    self.bump();
                    if self.peek() == Some(b'[') {
                        return Err(self.err("array-of-tables `[[...]]` is not supported"));
                    }
                    let name = self.parse_key()?;
                    if self.peek() == Some(b'.') {
                        return Err(self.err("nested `[a.b]` sections are not supported"));
                    }
                    if self.bump() != Some(b']') {
                        return Err(self.err("expected `]` to close section header"));
                    }
                    let line = self.line;
                    self.expect_eol()?;
                    current = Some((name, Table::new(), line));
                }
                Some(_) => {
                    let line = self.line;
                    let key = self.parse_key()?;
                    self.skip_inline_ws();
                    if self.bump() != Some(b'=') {
                        return Err(TomlError {
                            line,
                            message: format!("expected `=` after key `{key}`"),
                        });
                    }
                    self.skip_inline_ws();
                    let value = self.parse_value()?;
                    self.expect_eol()?;
                    let target = match &mut current {
                        Some((_, t, _)) => t,
                        None => &mut root,
                    };
                    target
                        .insert(key, value)
                        .map_err(|m| TomlError { line, message: m })?;
                }
            }
        }
        if let Some((name, table, line)) = current.take() {
            root.insert(name, Value::Table(table))
                .map_err(|m| TomlError { line, message: m })?;
        }
        Ok(root)
    }

    fn parse_key(&mut self) -> Result<String, TomlError> {
        self.skip_inline_ws();
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii key")
                    .to_string())
            }
            Some(c) => Err(self.err(format!("expected a key, found `{}`", c as char))),
            None => Err(self.err("expected a key, found end of input")),
        }
    }

    fn parse_value(&mut self) -> Result<Value, TomlError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some(b'\'') => Err(self.err("literal `'...'` strings are not supported; use \"...\"")),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't') | Some(b'f') => self.parse_bool(),
            // `inf` / `nan` (TOML float keywords; Rust's Display also
            // prints `NaN`) — the serializer emits these for
            // non-finite floats, so the parser must take them back.
            Some(b'i') | Some(b'n') | Some(b'N') => self.parse_non_finite(1.0),
            Some(c) if c == b'-' || c == b'+' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("expected a value, found `{}`", c as char))),
            None => Err(self.err("expected a value, found end of input")),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, TomlError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        // Basic strings are single-line; anchor every error to the
        // opening quote's line (bump() advances the counter past a
        // stray newline before the error would be built).
        let start_line = self.line;
        let err_at = |message: &str| TomlError {
            line: start_line,
            message: message.into(),
        };
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(err_at("unterminated string")),
                Some(b'\n') => return Err(err_at("newline inside a basic string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self
                                .bump()
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let d = (c as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?,
                        );
                    }
                    Some(c) => {
                        return Err(self.err(format!("unsupported escape `\\{}`", c as char)))
                    }
                    None => return Err(self.err("unterminated string")),
                },
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        for _ in 1..width {
                            self.bump();
                        }
                        let s = std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Value, TomlError> {
        for (word, v) in [("true", true), ("false", false)] {
            if self.src[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(Value::Bool(v));
            }
        }
        Err(self.err("expected `true` or `false`"))
    }

    /// `inf` / `nan` / `NaN`, possibly after a consumed sign.
    fn parse_non_finite(&mut self, sign: f64) -> Result<Value, TomlError> {
        for (word, v) in [("inf", f64::INFINITY), ("nan", f64::NAN), ("NaN", f64::NAN)] {
            if self.src[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(Value::Float(sign * v));
            }
        }
        Err(self.err("expected a value"))
    }

    fn parse_number(&mut self) -> Result<Value, TomlError> {
        let start = self.pos;
        let mut sign = 1.0;
        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
            if self.peek() == Some(b'-') {
                sign = -1.0;
            }
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'i') | Some(b'n') | Some(b'N')) {
            return self.parse_non_finite(sign);
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'-') | Some(b'+')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii number")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid float `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("invalid integer `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, TomlError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.bump();
        let mut items = Vec::new();
        loop {
            self.skip_all_ws();
            match self.peek() {
                None => return Err(self.err("unterminated array")),
                Some(b']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                _ => {
                    items.push(self.parse_value()?);
                    self.skip_all_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b']') => {}
                        None => return Err(self.err("unterminated array")),
                        Some(c) => {
                            return Err(self.err(format!(
                                "expected `,` or `]` in array, found `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, TomlError> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.bump();
        let mut table = Table::new();
        loop {
            self.skip_all_ws();
            match self.peek() {
                None => return Err(self.err("unterminated inline table")),
                Some(b'}') => {
                    self.bump();
                    return Ok(Value::Table(table));
                }
                _ => {
                    let line = self.line;
                    let key = self.parse_key()?;
                    self.skip_inline_ws();
                    if self.bump() != Some(b'=') {
                        return Err(TomlError {
                            line,
                            message: format!("expected `=` after key `{key}` in inline table"),
                        });
                    }
                    self.skip_inline_ws();
                    let value = self.parse_value()?;
                    table
                        .insert(key, value)
                        .map_err(|m| TomlError { line, message: m })?;
                    self.skip_all_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b'}') => {}
                        None => return Err(self.err("unterminated inline table")),
                        Some(c) => {
                            return Err(self.err(format!(
                                "expected `,` or `}}` in inline table, found `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
        }
    }
}

/// Parse a TOML-subset document into its root table.
pub fn parse(src: &str) -> Result<Table, TomlError> {
    Parser::new(src).parse_document()
}

fn key_needs_quoting(key: &str) -> bool {
    key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    // TOML floats need a decimal point or exponent to stay floats on
    // re-parse.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        out.push_str(".0");
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => write_string(out, s),
        Value::Int(i) => out.push_str(&format!("{i}")),
        Value::Float(f) => write_float(out, *f),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Table(t) => {
            out.push('{');
            for (i, (k, v)) in t.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push(' ');
                write_key(out, k);
                out.push_str(" = ");
                write_value(out, v);
            }
            out.push_str(" }");
        }
    }
}

fn write_key(out: &mut String, key: &str) {
    if key_needs_quoting(key) {
        write_string(out, key);
    } else {
        out.push_str(key);
    }
}

/// Serialize a root table to the supported TOML subset.
///
/// Scalar/array/inline-table entries come first as `key = value` lines;
/// sub-tables follow as `[section]` blocks (TOML requires this order so
/// a section does not capture later top-level keys). Output re-parses
/// to an equal table.
pub fn serialize(root: &Table) -> String {
    let mut out = String::new();
    let mut sections: Vec<(&str, &Table)> = Vec::new();
    for (k, v) in root.iter() {
        match v {
            Value::Table(t) => sections.push((k, t)),
            _ => {
                write_key(&mut out, k);
                out.push_str(" = ");
                write_value(&mut out, v);
                out.push('\n');
            }
        }
    }
    for (name, table) in sections {
        out.push('\n');
        out.push('[');
        write_key(&mut out, name);
        out.push_str("]\n");
        for (k, v) in table.iter() {
            // Sections are one level deep; a table inside a section
            // serializes inline.
            write_key(&mut out, k);
            out.push_str(" = ");
            write_value(&mut out, v);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_sections() {
        let doc = r#"
# a scenario
name = "fig4"
dedicated = 6
rate = 0.5
quick = false
seeds = [42, 1042]
tags = ["a", "b"]

[axis]
kind = "rates"
points = [0.1, 0.3, 0.5]
"#;
        let t = parse(doc).unwrap();
        assert_eq!(t.get("name"), Some(&Value::Str("fig4".into())));
        assert_eq!(t.get("dedicated"), Some(&Value::Int(6)));
        assert_eq!(t.get("rate"), Some(&Value::Float(0.5)));
        assert_eq!(t.get("quick"), Some(&Value::Bool(false)));
        assert_eq!(
            t.get("seeds"),
            Some(&Value::Array(vec![Value::Int(42), Value::Int(1042)]))
        );
        let axis = match t.get("axis") {
            Some(Value::Table(a)) => a,
            other => panic!("axis: {other:?}"),
        };
        assert_eq!(axis.get("kind"), Some(&Value::Str("rates".into())));
        assert_eq!(
            axis.get("points"),
            Some(&Value::Array(vec![
                Value::Float(0.1),
                Value::Float(0.3),
                Value::Float(0.5)
            ]))
        );
    }

    #[test]
    fn parses_inline_tables_and_multiline_arrays() {
        let doc = "policies = [\n  { id = \"ha-v1\", dedicated = 3 }, # comment\n  \"moon\",\n]\n";
        let t = parse(doc).unwrap();
        let arr = match t.get("policies") {
            Some(Value::Array(a)) => a,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr.len(), 2);
        match &arr[0] {
            Value::Table(t) => {
                assert_eq!(t.get("id"), Some(&Value::Str("ha-v1".into())));
                assert_eq!(t.get("dedicated"), Some(&Value::Int(3)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(arr[1], Value::Str("moon".into()));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut t = Table::new();
        t.set("s", Value::Str("a\"b\\c\nd\te\u{1F600}".into()));
        let text = serialize(&t);
        let back = parse(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nb = \n").unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(e.to_string().starts_with("line 2:"), "{e}");

        let e = parse("a = 1\nb = 2 junk\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse("a = \"unterminated\nb = 1\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"), "{e}");

        let e = parse("x = [1, 2\ny = 3\n").unwrap_err();
        assert!(e.message.contains("array"), "{e}");

        let e = parse("[[points]]\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("not supported"), "{e}");
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(parse("a = 'literal'\n").is_err());
        assert!(parse("[a.b]\n").is_err());
    }

    #[test]
    fn floats_keep_floatness_through_serialize() {
        let mut t = Table::new();
        t.set("whole", Value::Float(2.0));
        t.set("frac", Value::Float(0.1));
        t.set("int", Value::Int(2));
        let text = serialize(&t);
        let back = parse(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn negative_numbers_and_exponents() {
        let t = parse("a = -3\nb = -0.5\nc = 1e-3\n").unwrap();
        assert_eq!(t.get("a"), Some(&Value::Int(-3)));
        assert_eq!(t.get("b"), Some(&Value::Float(-0.5)));
        assert_eq!(t.get("c"), Some(&Value::Float(1e-3)));
    }

    #[test]
    fn non_finite_floats_parse_and_reserialize() {
        let t = parse("a = inf\nb = -inf\nc = nan\nd = NaN\n").unwrap();
        assert_eq!(t.get("a"), Some(&Value::Float(f64::INFINITY)));
        assert_eq!(t.get("b"), Some(&Value::Float(f64::NEG_INFINITY)));
        assert!(matches!(t.get("c"), Some(Value::Float(f)) if f.is_nan()));
        assert!(matches!(t.get("d"), Some(Value::Float(f)) if f.is_nan()));
        // What the serializer emits for non-finite floats must re-parse
        // (NaN can never compare equal, but it must not be a syntax
        // error).
        let mut doc = Table::new();
        doc.set("x", Value::Float(f64::INFINITY));
        doc.set("y", Value::Float(f64::NAN));
        let back = parse(&serialize(&doc)).unwrap();
        assert_eq!(back.get("x"), Some(&Value::Float(f64::INFINITY)));
        assert!(matches!(back.get("y"), Some(Value::Float(f)) if f.is_nan()));
    }

    #[test]
    fn section_then_top_level_key_is_section_scoped() {
        // Keys after a [section] belong to the section (TOML semantics).
        let t = parse("[axis]\nkind = \"rates\"\n").unwrap();
        let axis = match t.get("axis") {
            Some(Value::Table(a)) => a,
            other => panic!("{other:?}"),
        };
        assert_eq!(axis.get("kind"), Some(&Value::Str("rates".into())));
    }

    #[test]
    fn serializes_sections_after_scalars() {
        let mut axis = Table::new();
        axis.set("kind", Value::Str("rates".into()));
        let mut t = Table::new();
        t.set("axis", Value::Table(axis));
        t.set("name", Value::Str("x".into()));
        let text = serialize(&t);
        let name_pos = text.find("name =").unwrap();
        let axis_pos = text.find("[axis]").unwrap();
        assert!(name_pos < axis_pos, "{text}");
        assert_eq!(parse(&text).unwrap().get("name"), t.get("name"));
    }
}
