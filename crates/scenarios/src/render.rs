//! Folding grid results back into the spec's tables and the
//! machine-readable scenario report.
//!
//! The table output is byte-compatible with what the hand-written fig/
//! table binaries printed (same `moon::report` formatting, same title
//! strings via the spec's templates), which is what lets those
//! binaries become thin wrappers without changing their tables.

use crate::expand::Plan;
use crate::spec::{TableKind, TableSpec};
use moon::{report, RunResult};
use workloads::ReduceCount;

/// True when any run in a cell's seed pool ended in a containment
/// verdict (event-limit livelock, wall-deadline, contained panic).
/// Such runs carry *partial* counters — whatever the world had done
/// when it was cut off — so pooling them would print plausible-looking
/// garbage. Every table kind treats a poisoned cell as DNF instead.
pub fn cell_poisoned(results: &[RunResult]) -> bool {
    results.iter().any(|r| r.outcome.is_contained_failure())
}

/// Mean job time over finished seeds (`None` if every seed DNF'd or
/// the pool is [poisoned](cell_poisoned)).
/// (Formerly `bench::mean_time`; `bench` re-exports it.)
pub fn mean_time(results: &[RunResult]) -> Option<f64> {
    if cell_poisoned(results) {
        return None;
    }
    let done: Vec<f64> = results
        .iter()
        .filter_map(|r| r.job_time.map(|d| d.as_secs_f64()))
        .collect();
    (!done.is_empty()).then(|| done.iter().sum::<f64>() / done.len() as f64)
}

/// Mean duplicated-task count across seeds (`None` when the pool is
/// [poisoned](cell_poisoned) — a cut-off run's duplicate counter is
/// partial, not a measurement).
/// (Formerly `bench::mean_duplicates`; `bench` re-exports it.)
pub fn mean_duplicates(results: &[RunResult]) -> Option<f64> {
    if cell_poisoned(results) {
        return None;
    }
    Some(
        results
            .iter()
            .map(|r| r.job.duplicated_tasks as f64)
            .sum::<f64>()
            / results.len().max(1) as f64,
    )
}

/// Mean bounded slowdown over every committed job run in a point's
/// seed pool (`None` when no job committed — the saturated regime —
/// or when the pool is [poisoned](cell_poisoned)).
pub fn mean_slowdown(results: &[RunResult]) -> Option<f64> {
    if cell_poisoned(results) {
        return None;
    }
    let v: Vec<f64> = results
        .iter()
        .flat_map(|r| r.jobs.iter().flatten())
        .filter_map(|j| j.bounded_slowdown())
        .collect();
    (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64)
}

fn title_for(table: &TableSpec, plan: &Plan, panel: usize) -> String {
    table
        .title
        .replace("{panel}", &plan.spec.panels[panel])
        .replace("{workload}", &plan.workload_names[panel])
}

/// One row of per-column means for a panel.
fn series_rows(
    plan: &Plan,
    results: &[Vec<RunResult>],
    panel: usize,
    value: impl Fn(&[RunResult]) -> Option<f64>,
) -> Vec<(String, Vec<Option<f64>>)> {
    plan.row_labels
        .iter()
        .enumerate()
        .map(|(row, label)| {
            let values = (0..plan.col_labels.len())
                .map(|col| value(&results[plan.point_index(panel, row, col)]))
                .collect();
            (label.clone(), values)
        })
        .collect()
}

/// The Table I catalog — rendered from resolved workload specs, no
/// simulation involved (byte-compatible with the old `table1` binary).
fn catalog_table(title: &str, plan: &Plan) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str("application\tinput size\t# maps\t# reduces\n");
    for name in &plan.spec.workloads {
        // Catalog rows show the *unshrunk* paper shape.
        let w = match crate::workload::resolve(name) {
            Ok(w) => w,
            Err(_) => continue,
        };
        let reduces = match w.reduces {
            ReduceCount::Fixed(n) => n.to_string(),
            ReduceCount::SlotsFraction(f) => format!(
                "{f} x AvailSlots (= {} on 60x2 slots)",
                ReduceCount::SlotsFraction(f).resolve(120)
            ),
        };
        out.push_str(&format!(
            "{}\t{} GB\t{}\t{}\n",
            w.name,
            w.input_bytes >> 30,
            w.n_maps,
            reduces
        ));
    }
    out.push_str("# (by default, Hadoop runs 2 reduce tasks per node)\n");
    out
}

/// Nearest-rank percentile over ascending-sorted samples.
fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Per-job SLO aggregates of a multi-job stream: makespan and bounded
/// slowdown means over committed jobs, queueing-delay percentiles over
/// launched jobs — pooled across every seed at the first axis column
/// (streams are usually swept at a single rate, like the profile and
/// detail tables). `job_runs`/`completed` count job *runs* over that
/// pool: with S seeds and an N-job stream, `job_runs` is S·N, not N.
fn jobs_table(title: &str, plan: &Plan, results: &[Vec<RunResult>], panel: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    // Scheduling-metadata columns (deadline-miss rate, preemption count)
    // only render when some pooled row actually carries metadata, so
    // scenarios without `[jobs]` deadlines/priorities/tenants keep their
    // historical byte-identical table shape.
    let scheduled = plan.row_labels.iter().enumerate().any(|(row, _)| {
        results[plan.point_index(panel, row, 0)]
            .iter()
            .flat_map(|r| r.jobs.iter().flatten())
            .any(|j| j.has_metadata())
    });
    out.push_str(
        "policy\tjob_runs\tcompleted\tmakespan_mean(s)\tslowdown_mean\t\
         queue_p50(s)\tqueue_p95(s)",
    );
    if scheduled {
        out.push_str("\tmiss_rate\tpreempted");
    }
    out.push('\n');
    let mean = |v: &[f64]| (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64);
    for (row, label) in plan.row_labels.iter().enumerate() {
        let rs = &results[plan.point_index(panel, row, 0)];
        if cell_poisoned(rs) {
            // A cut-off run's SLO rows are partial; the whole pooled
            // cell is DNF (counts and means), "-" for the percentiles.
            out.push_str(&format!("{label}\tDNF\tDNF\tDNF\tDNF\t-\t-"));
            if scheduled {
                out.push_str("\t-\t-");
            }
            out.push('\n');
            continue;
        }
        let rows: Vec<&moon::JobSlo> = rs.iter().flat_map(|r| r.jobs.iter().flatten()).collect();
        let completed = rows.iter().filter(|j| j.finished.is_some()).count();
        let makespans: Vec<f64> = rows.iter().filter_map(|j| j.makespan_secs()).collect();
        let slowdowns: Vec<f64> = rows.iter().filter_map(|j| j.bounded_slowdown()).collect();
        let mut queues: Vec<f64> = rows.iter().filter_map(|j| j.queue_delay_secs()).collect();
        queues.sort_by(|a, b| a.partial_cmp(b).expect("queue delays are finite"));
        let fmt1 = |v: Option<f64>| v.map(|s| format!("{s:.1}")).unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            label,
            rows.len(),
            completed,
            report::secs_or_dnf(mean(&makespans)),
            mean(&slowdowns)
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "DNF".into()),
            fmt1(percentile(&queues, 0.50)),
            fmt1(percentile(&queues, 0.95)),
        ));
        if scheduled {
            // Miss rate is over deadline-carrying job runs only; "-"
            // when this row's pool had none.
            let with_deadline = rows.iter().filter(|j| j.deadline.is_some()).count();
            let missed = rows.iter().filter(|j| j.deadline_missed()).count();
            let preempted: u64 = rows.iter().map(|j| u64::from(j.metrics.preempted)).sum();
            let miss = if with_deadline == 0 {
                "-".into()
            } else {
                format!("{:.2}", missed as f64 / with_deadline as f64)
            };
            out.push_str(&format!("\t{miss}\t{preempted}"));
        }
        out.push('\n');
    }
    out
}

/// The load-vs-bounded-slowdown curve: one row per policy, one column
/// per axis point, cells are mean bounded slowdown over committed job
/// runs (two decimals — slowdowns live near 1, where `secs_or_dnf`'s
/// integer formatting would flatten the curve). `DNF` marks a column
/// where no job committed: the policy saturated at that load.
fn saturation_table(title: &str, plan: &Plan, results: &[Vec<RunResult>], panel: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title} (bounded slowdown)\n"));
    out.push_str("policy");
    for c in &plan.col_labels {
        out.push_str(&format!("\t{c}"));
    }
    out.push('\n');
    for (row, label) in plan.row_labels.iter().enumerate() {
        out.push_str(label);
        for col in 0..plan.col_labels.len() {
            let v = mean_slowdown(&results[plan.point_index(panel, row, col)]);
            out.push('\t');
            out.push_str(&v.map(|s| format!("{s:.2}")).unwrap_or_else(|| "DNF".into()));
        }
        out.push('\n');
    }
    out
}

/// The compact ablation-style detail table (time / dup / kills).
fn detail_table(title: &str, plan: &Plan, results: &[Vec<RunResult>], panel: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str("variant\tjob(s)\tdup\tkilled_maps\tkilled_reduces\n");
    for (row, label) in plan.row_labels.iter().enumerate() {
        // Detail tables are single-column sweeps; show the first column.
        let rs = &results[plan.point_index(panel, row, 0)];
        if cell_poisoned(rs) {
            out.push_str(&format!("{label}\tDNF\tDNF\tDNF\tDNF\n"));
            continue;
        }
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            label,
            report::secs_or_dnf(mean_time(rs)),
            rs[0].job.duplicated_tasks,
            rs[0].job.killed_maps,
            rs[0].job.killed_reduces,
        ));
    }
    out
}

/// Render every table in the spec, panel by panel, separated by blank
/// lines — the text the fig binaries print.
pub fn render_tables(plan: &Plan, results: &[Vec<RunResult>]) -> String {
    let mut out = String::new();
    for table in &plan.spec.tables {
        if table.kind == TableKind::Catalog {
            // The catalog lists every workload in one table.
            out.push_str(&catalog_table(&title_for(table, plan, 0), plan));
            out.push('\n');
            continue;
        }
        for panel in 0..plan.spec.n_panels() {
            let title = title_for(table, plan, panel);
            let text = match table.kind {
                TableKind::Time => report::series_table_cols(
                    &title,
                    &plan.col_labels,
                    &series_rows(plan, results, panel, mean_time),
                    "seconds",
                ),
                TableKind::Duplicates => report::series_table_cols(
                    &title,
                    &plan.col_labels,
                    &series_rows(plan, results, panel, mean_duplicates),
                    "count",
                ),
                TableKind::Profile => {
                    let firsts: Vec<RunResult> = (0..plan.row_labels.len())
                        .map(|row| {
                            let rs = &results[plan.point_index(panel, row, 0)];
                            // Surface the containment verdict itself as
                            // the representative run: `profile_table`
                            // renders contained failures as a DNF row.
                            rs.iter()
                                .find(|r| r.outcome.is_contained_failure())
                                .unwrap_or(&rs[0])
                                .clone()
                        })
                        .collect();
                    report::profile_table(&title, &firsts)
                }
                TableKind::Detail => detail_table(&title, plan, results, panel),
                TableKind::Jobs => jobs_table(&title, plan, results, panel),
                TableKind::Saturation => saturation_table(&title, plan, results, panel),
                TableKind::Catalog => unreachable!("handled above"),
            };
            out.push_str(&text);
            out.push('\n');
        }
    }
    out
}

fn axis_kind_name(plan: &Plan) -> &'static str {
    match plan.spec.axis {
        crate::spec::Axis::Rates(_) => "rates",
        crate::spec::Axis::Correlated(_) => "correlated",
        crate::spec::Axis::TraceFile { .. } => "trace-file",
        crate::spec::Axis::Load(_) => "load",
    }
}

/// The machine-readable scenario report: spec identity, axis, per-row
/// mean series, an outcome tally, and every raw run (the rows shared
/// with `bench::dump_json` via `moon::report::json`).
pub fn report_json(plan: &Plan, results: &[Vec<RunResult>], seeds: &[u64]) -> String {
    use moon::report::json;
    let mut series = Vec::new();
    for panel in 0..plan.spec.n_panels() {
        for (row, label) in plan.row_labels.iter().enumerate() {
            let means: Vec<String> = (0..plan.col_labels.len())
                .map(|col| json::opt_number(mean_time(&results[plan.point_index(panel, row, col)])))
                .collect();
            series.push(format!(
                "    {{ \"panel\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \"mean_secs\": [{}] }}",
                json::escape(&plan.spec.panels[panel]),
                json::escape(&plan.workload_names[panel]),
                json::escape(label),
                means.join(", ")
            ));
        }
    }
    let flat: Vec<&RunResult> = results.iter().flatten().collect();
    let seeds_str: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
    let cols: Vec<String> = plan
        .col_labels
        .iter()
        .map(|c| format!("\"{}\"", json::escape(c)))
        .collect();
    let values: Vec<String> = plan.axis_values.iter().map(|&v| json::number(v)).collect();
    format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"{}\",\n",
            "  \"title\": \"{}\",\n",
            "  \"quick_mode\": {},\n",
            "  \"seeds\": [{}],\n",
            "  \"axis\": {{ \"kind\": \"{}\", \"columns\": [{}], \"values\": [{}] }},\n",
            "  \"outcomes\": \"{}\",\n",
            "  \"series\": [\n{}\n  ],\n",
            "  \"runs\": {}",
            "}}\n"
        ),
        json::escape(&plan.spec.name),
        json::escape(&plan.spec.title),
        crate::knobs::quick_mode(),
        seeds_str.join(", "),
        axis_kind_name(plan),
        cols.join(", "),
        values.join(", "),
        json::escape(&moon::report::outcome_summary(flat.iter().copied())),
        series.join(",\n"),
        json::results_array(flat),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{expand, registry};
    use moon::Outcome;

    fn fake_result(label: &str, secs: Option<f64>, seed: u64) -> RunResult {
        RunResult {
            label: label.into(),
            workload: "w".into(),
            unavailability: 0.3,
            job_time: secs.map(simkit::SimDuration::from_secs_f64),
            outcome: if secs.is_some() {
                Outcome::Completed
            } else {
                Outcome::Horizon
            },
            job: Default::default(),
            profile: Default::default(),
            fetch_failures: 0,
            events: 1,
            seed,
            jobs: None,
            audit: Vec::new(),
            telemetry: None,
        }
    }

    fn fake_results(plan: &Plan) -> Vec<Vec<RunResult>> {
        (0..plan.n_points())
            .map(|i| {
                vec![fake_result(
                    "x",
                    (i % 3 != 0).then_some(100.0 + i as f64),
                    42,
                )]
            })
            .collect()
    }

    #[test]
    fn mean_helpers() {
        let rs = vec![
            fake_result("a", Some(100.0), 1),
            fake_result("a", None, 2),
            fake_result("a", Some(200.0), 3),
        ];
        assert_eq!(mean_time(&rs), Some(150.0));
        assert_eq!(mean_time(&rs[1..2]), None);
        assert_eq!(mean_duplicates(&rs), Some(0.0));
    }

    #[test]
    fn poisoned_cells_render_dnf_in_every_table_kind() {
        // One livelocked seed poisons its whole pooled cell: the other
        // seeds' numbers must not leak into any table kind.
        let mut livelocked = fake_result("x", None, 2);
        livelocked.outcome = Outcome::EventLimit;
        livelocked.job.duplicated_tasks = 999;
        livelocked.profile.avg_map_time = 123.0;
        livelocked.jobs = Some(vec![fake_slo(10, Some(500))]);
        let pool = vec![fake_result("x", Some(100.0), 1), livelocked];
        assert!(cell_poisoned(&pool));
        assert_eq!(mean_time(&pool), None, "time cell must DNF");
        assert_eq!(mean_duplicates(&pool), None, "dup cell must DNF");
        assert_eq!(mean_slowdown(&pool), None, "slowdown cell must DNF");
        // The same rule holds for the wall-deadline and crash verdicts.
        for outcome in [Outcome::Deadline, Outcome::Crashed] {
            let mut r = fake_result("x", None, 3);
            r.outcome = outcome;
            assert!(cell_poisoned(&[r]));
        }

        // End to end: poison the first point of each scenario whose
        // tables exercise Profile/Detail/Jobs and check the rendered
        // rows say DNF, not numbers pooled from the healthy seed.
        let plan = expand::expand(&registry::find("job-stream-light").unwrap()).unwrap();
        let results: Vec<Vec<RunResult>> = (0..plan.n_points())
            .map(|i| {
                let mut a = fake_result("x", Some(300.0), 1);
                a.jobs = Some(vec![fake_slo(100, Some(300))]);
                let mut b = fake_result("x", Some(200.0), 2);
                b.jobs = Some(vec![fake_slo(60, Some(260))]);
                if i == 0 {
                    b.outcome = Outcome::EventLimit;
                    b.job_time = None;
                }
                vec![a, b]
            })
            .collect();
        let text = render_tables(&plan, &results);
        let first = plan.row_labels.first().unwrap();
        assert!(
            text.contains(&format!("{first}\tDNF\tDNF\tDNF\tDNF\t-\t-")),
            "jobs table must DNF the poisoned pooled row: {text}"
        );
        let plan = expand::expand(&registry::find("table2").unwrap()).unwrap();
        let results: Vec<Vec<RunResult>> = (0..plan.n_points())
            .map(|i| {
                let mut r = fake_result("x", Some(100.0), 1);
                r.profile.avg_map_time = 21.0;
                if i == 0 {
                    r.outcome = Outcome::Deadline;
                    r.job_time = None;
                }
                vec![r]
            })
            .collect();
        let text = render_tables(&plan, &results);
        assert!(
            text.contains("\tDNF\tDNF\tDNF\tDNF\tDNF\n"),
            "profile table must DNF the poisoned row: {text}"
        );
    }

    #[test]
    fn tables_render_with_substituted_titles() {
        let plan = expand::expand(&registry::find("high-churn").unwrap()).unwrap();
        let results = fake_results(&plan);
        let text = render_tables(&plan, &results);
        assert!(
            text.contains("## High churn: execution time (seconds)"),
            "{text}"
        );
        assert!(
            text.contains("## High churn: duplicated tasks (count)"),
            "{text}"
        );
        assert!(text.contains("p=0.7"), "{text}");
        assert!(text.contains("MOON-Hybrid\t"), "{text}");
        assert!(text.contains("DNF"), "{text}");
    }

    #[test]
    fn catalog_matches_table1_binary_output() {
        let plan = expand::expand(&registry::find("table1").unwrap()).unwrap();
        let text = render_tables(&plan, &[]);
        assert!(
            text.starts_with("# Table I — application configurations\n"),
            "{text}"
        );
        assert!(
            text.contains("application\tinput size\t# maps\t# reduces\n"),
            "{text}"
        );
        assert!(
            text.contains("sort\t24 GB\t384\t0.9 x AvailSlots (= 108 on 60x2 slots)"),
            "{text}"
        );
        assert!(text.contains("word count\t20 GB\t320\t20"), "{text}");
        assert!(
            text.contains("# (by default, Hadoop runs 2 reduce tasks per node)"),
            "{text}"
        );
    }

    #[test]
    fn saturation_table_renders_per_column_slowdowns() {
        let plan = expand::expand(&registry::find("fleet-1k").unwrap()).unwrap();
        // One job row per run: makespan 150 s over a 100 s service
        // time ⇒ bounded slowdown 1.50 in every non-DNF cell.
        let slo = moon::JobSlo {
            job: 0,
            workload: "quick".into(),
            submitted: simkit::SimTime::ZERO,
            first_launch: Some(simkit::SimTime::from_secs(50)),
            finished: Some(simkit::SimTime::from_secs(150)),
            deadline: None,
            priority: 0,
            tenant: 0,
            metrics: Default::default(),
        };
        let results: Vec<Vec<RunResult>> = (0..plan.n_points())
            .map(|i| {
                let mut r = fake_result("x", Some(150.0), 42);
                // Starve the last column's first policy row: no job
                // committed there, so its cell must read DNF.
                r.jobs = if i == 3 {
                    Some(vec![])
                } else {
                    Some(vec![slo.clone()])
                };
                vec![r]
            })
            .collect();
        let text = render_tables(&plan, &results);
        assert!(
            text.contains("## Fleet 1k: bounded slowdown vs arrival rate (bounded slowdown)"),
            "{text}"
        );
        assert!(
            text.contains("MOON-Hybrid\t1.50\t1.50\t1.50\tDNF"),
            "{text}"
        );
        assert!(
            text.contains("Hadoop1Min\t1.50\t1.50\t1.50\t1.50"),
            "{text}"
        );
        assert!(text.contains("jobs/h=240"), "{text}");
    }

    fn fake_slo(launch: u64, finished: Option<u64>) -> moon::JobSlo {
        moon::JobSlo {
            job: 0,
            workload: "quick".into(),
            submitted: simkit::SimTime::ZERO,
            first_launch: Some(simkit::SimTime::from_secs(launch)),
            finished: finished.map(simkit::SimTime::from_secs),
            deadline: None,
            priority: 0,
            tenant: 0,
            metrics: Default::default(),
        }
    }

    #[test]
    fn mean_slowdown_pools_committed_jobs_across_seeds() {
        // Three seeds of the same point: seed 1 commits a job at
        // slowdown 1.5 alongside a DNF job, seed 2 commits one at 2.5,
        // seed 3's stream starved entirely. The pool must average only
        // the committed rows — across seeds, not per seed.
        let mut a = fake_result("x", Some(300.0), 1);
        a.jobs = Some(vec![fake_slo(100, Some(300)), fake_slo(100, None)]);
        let mut b = fake_result("x", Some(200.0), 2);
        b.jobs = Some(vec![fake_slo(120, Some(200))]);
        let mut c = fake_result("x", None, 3);
        c.jobs = Some(vec![fake_slo(50, None)]);
        assert_eq!(mean_slowdown(&[a, b, c.clone()]), Some(2.0));
        // A pool where nothing committed is the saturated regime: None,
        // which the saturation table renders as DNF.
        assert_eq!(mean_slowdown(&[c]), None);
        assert_eq!(mean_slowdown(&[]), None);
    }

    #[test]
    fn jobs_table_pools_mixed_committed_and_dnf_cells() {
        let plan = expand::expand(&registry::find("job-stream-light").unwrap()).unwrap();
        // Two seeds per point. First policy row: seed 1 commits a job
        // (makespan 300 s over a 200 s service time ⇒ slowdown 1.50)
        // next to a launched-but-never-finished job; seed 2's whole
        // stream starves. Remaining rows: all jobs DNF.
        let results: Vec<Vec<RunResult>> = (0..plan.n_points())
            .map(|i| {
                let mut a = fake_result("x", Some(300.0), 1);
                let mut b = fake_result("x", None, 2);
                if i == 0 {
                    a.jobs = Some(vec![fake_slo(100, Some(300)), fake_slo(150, None)]);
                    b.jobs = Some(vec![]);
                } else {
                    a.jobs = Some(vec![fake_slo(40, None)]);
                    b.jobs = Some(vec![fake_slo(60, None)]);
                }
                vec![a, b]
            })
            .collect();
        let text = render_tables(&plan, &results);
        assert!(text.contains("## Job stream light: per-job SLOs"), "{text}");
        // Pooled row: 2 job runs across both seeds, 1 committed;
        // makespan/slowdown average the committed job only, queue
        // percentiles pool both *launched* jobs (delays 100 s, 150 s:
        // p50 = 100, p95 = 150 by nearest rank).
        let first = plan.row_labels.first().unwrap();
        assert!(
            text.contains(&format!("{first}\t2\t1\t300\t1.50\t100.0\t150.0")),
            "{text}"
        );
        // An all-DNF row keeps its run count but shows DNF aggregates —
        // queue delays still render (those jobs did launch).
        let last = plan.row_labels.last().unwrap();
        assert!(
            text.contains(&format!("{last}\t2\t0\tDNF\tDNF\t40.0\t60.0")),
            "{text}"
        );
    }

    #[test]
    fn jobs_table_gates_scheduling_columns_on_metadata() {
        let plan = expand::expand(&registry::find("job-stream-light").unwrap()).unwrap();
        // Metadata-free rows keep the historical header (pinned above in
        // jobs_table_pools_mixed_committed_and_dnf_cells); one row with a
        // deadline flips the whole table to the extended shape.
        let results: Vec<Vec<RunResult>> = (0..plan.n_points())
            .map(|i| {
                let mut a = fake_result("x", Some(300.0), 1);
                let mut slo = fake_slo(100, Some(300));
                if i == 0 {
                    // Deadline at 200 s — the job finished at 300 s, so
                    // it missed; one preemption on the row.
                    slo.deadline = Some(simkit::SimTime::from_secs(200));
                    slo.metrics.preempted = 1;
                }
                a.jobs = Some(vec![slo]);
                vec![a]
            })
            .collect();
        let text = render_tables(&plan, &results);
        assert!(
            text.contains("queue_p95(s)\tmiss_rate\tpreempted"),
            "{text}"
        );
        let first = plan.row_labels.first().unwrap();
        assert!(
            text.contains(&format!("{first}\t1\t1\t300\t1.50\t100.0\t100.0\t1.00\t1")),
            "{text}"
        );
        // Metadata-less sibling rows render "-" for miss rate and a zero
        // preemption count under the extended header.
        let second = &plan.row_labels[1];
        assert!(
            text.contains(&format!("{second}\t1\t1\t300\t1.50\t100.0\t100.0\t-\t0")),
            "{text}"
        );
    }

    #[test]
    fn report_json_carries_axis_series_and_runs() {
        let plan = expand::expand(&registry::find("high-churn").unwrap()).unwrap();
        let results = fake_results(&plan);
        let json = report_json(&plan, &results, &[42]);
        assert!(json.contains("\"scenario\": \"high-churn\""), "{json}");
        assert!(json.contains("\"kind\": \"rates\""), "{json}");
        assert!(json.contains("\"values\": [0.3, 0.5, 0.7]"), "{json}");
        assert!(json.contains("\"policy\": \"MOON-Hybrid\""), "{json}");
        assert!(json.contains("\"outcome\": \"completed\""), "{json}");
        assert!(json.contains("\"outcomes\": \""), "{json}");
        // Structural sanity: braces balance.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "{json}");
    }
}
