//! Seeded scenario fuzzer with a metamorphic oracle.
//!
//! `moon-cli fuzz <n>` samples valid [`ScenarioSpec`]s from the model
//! space (fleet size, horizon, availability axes — synthetic rates,
//! correlated fleets, generated trace files — arrival streams, and
//! policies from the catalog), runs each case *and a mutated sibling*
//! (more nodes, more churn, more replication, a fair-share twin, a
//! priority boost, or uniformly slacked deadlines — plus a
//! preemption-under-idle single-run check) through
//! [`moon::Experiment`], and checks the invariant suite in
//! [`crate::invariants`]. Failing cases are shrunk by a deterministic
//! minimizer (halve fleet / jobs / horizon while the failure
//! reproduces) and written as ready-to-run `.toml` repros next to the
//! JSON report.
//!
//! Everything is derived from the root seed: the same
//! `fuzz <n> --seed S` invocation runs the same cases, in order, on
//! one thread, and produces a byte-identical report.

use crate::invariants;
use crate::spec::{
    ArrivalSpec, Axis, CorrelatedAxis, CorrelatedKnob, JobStreamSpec, PolicyRef, ScenarioError,
    ScenarioSpec, TableKind, TableSpec,
};
use crate::{codec, expand};
use availability::{TraceGenConfig, TraceGenerator};
use moon::RunResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simkit::{derive_seed, SimTime};
use std::path::{Path, PathBuf};

/// Per-case RNG-stream keys (arbitrary, fixed: reseeding keeps every
/// case independent of how much entropy its neighbours consumed).
const TRACE_SEED_KEY: u64 = 0x7000;

/// Evaluation budget for the shrinking minimizer, in re-evaluations.
const SHRINK_BUDGET: u32 = 12;

/// A deliberately injected bug, used to validate that the oracle
/// actually catches scheduler regressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Replace every sampled `+fair` policy with `+fair-inverted`
    /// ([`mapred::CrossJobPolicy::FairShareInverted`]): most-loaded
    /// job first, newest queued job first — starves the queue tail,
    /// which invariant 4 must flag.
    InvertFairShare,
}

impl Fault {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Fault::InvertFairShare => "invert-fair",
        }
    }
}

/// The metamorphic mutation a case pairs its base scenario with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Grow the volatile fleet by ~50% — mean makespan must not rise.
    AddNodes,
    /// Raise the synthetic unavailability rate by 0.2 — mean makespan
    /// must not drop.
    RaiseUnavailability,
    /// Bump the policy's intermediate replication degree — committed
    /// work must not drop.
    RaiseReplication,
    /// Run the same scenario under FIFO and fair-share cross-job
    /// scheduling — fair share's p95 queueing delay must not exceed
    /// FIFO's under a symmetric closed load.
    FairVsFifo,
    /// Boost alternating jobs' priority under preemptive
    /// strict-priority scheduling — the boosted jobs' own p95 queueing
    /// delay must not rise.
    RaisePriority,
    /// Add the same constant slack to every job's relative deadline
    /// under preemptive EDF — the schedule must be bit-identical (a
    /// uniform shift preserves every EDF comparison).
    SlackDeadlines,
    /// Space batch arrivals so jobs never coexist under a preemptive
    /// policy — the preemption count must be exactly zero.
    PreemptIdle,
}

impl Mutation {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Mutation::AddNodes => "add-nodes",
            Mutation::RaiseUnavailability => "raise-unavailability",
            Mutation::RaiseReplication => "raise-replication",
            Mutation::FairVsFifo => "fair-vs-fifo",
            Mutation::RaisePriority => "raise-priority",
            Mutation::SlackDeadlines => "slack-deadlines",
            Mutation::PreemptIdle => "preempt-idle",
        }
    }
}

/// Fuzz campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Cases to sample and check.
    pub n_cases: u32,
    /// Root seed; everything (specs, run seeds, trace files) derives
    /// from it.
    pub seed: u64,
    /// Directory for generated trace files and shrunken repro specs.
    pub out_dir: PathBuf,
    /// Optional injected bug (oracle validation).
    pub fault: Option<Fault>,
}

/// One sampled case: a base scenario plus the mutation it is checked
/// against.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Case index within the campaign.
    pub index: u32,
    /// The base scenario (carries its own explicit seeds).
    pub spec: ScenarioSpec,
    /// The paired metamorphic mutation.
    pub mutation: Mutation,
}

/// One confirmed invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Case index.
    pub case: u32,
    /// The case's mutation kind.
    pub mutation: Mutation,
    /// Which invariant failed (`inv1-add-nodes`, …).
    pub invariant: String,
    /// Human-readable description with the measured values.
    pub detail: String,
    /// Path of the shrunken ready-to-run repro spec.
    pub repro: Option<String>,
}

/// The campaign result: counters plus every violation, JSON-writable.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases checked.
    pub n_cases: u32,
    /// Root seed.
    pub seed: u64,
    /// Was quick mode shrinking the workloads?
    pub quick: bool,
    /// The injected fault, if any.
    pub fault: Option<Fault>,
    /// Total simulation runs (including mutants and shrinking).
    pub experiments: u64,
    /// Per-case mutation kinds, indexed by case.
    pub case_mutations: Vec<Mutation>,
    /// Every confirmed violation, in case order.
    pub violations: Vec<Violation>,
}

impl FuzzReport {
    /// Did the campaign pass (no violations)?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic JSON rendering (keys and order fixed; no
    /// timestamps or map iteration).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut s = String::new();
        s.push_str("{\n  \"fuzz\": {\n");
        s.push_str(&format!("    \"n_cases\": {},\n", self.n_cases));
        s.push_str(&format!("    \"seed\": {},\n", self.seed));
        s.push_str(&format!("    \"quick\": {},\n", self.quick));
        match self.fault {
            Some(f) => s.push_str(&format!("    \"fault\": \"{}\",\n", f.as_str())),
            None => s.push_str("    \"fault\": null,\n"),
        }
        s.push_str(&format!("    \"experiments\": {},\n", self.experiments));
        s.push_str("    \"mutations\": [");
        for (i, m) in self.case_mutations.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", m.as_str()));
        }
        s.push_str("],\n");
        s.push_str("    \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(if i > 0 { ",\n      " } else { "\n      " });
            s.push_str(&format!(
                "{{\"case\": {}, \"mutation\": \"{}\", \"invariant\": \"{}\", \
                 \"detail\": \"{}\", \"repro\": {}}}",
                v.case,
                v.mutation.as_str(),
                esc(&v.invariant),
                esc(&v.detail),
                match &v.repro {
                    Some(p) => format!("\"{}\"", esc(p)),
                    None => "null".into(),
                }
            ));
        }
        if self.violations.is_empty() {
            s.push_str("]\n");
        } else {
            s.push_str("\n    ]\n");
        }
        s.push_str("  }\n}\n");
        s
    }
}

/// An invariant failure found while evaluating one case.
struct Failure {
    invariant: String,
    detail: String,
}

// ---------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------

/// Catalog ids the non-replication cases draw their policy row from.
/// The preemptive entries keep the monotone invariants honest under
/// kill-and-requeue scheduling too.
const POLICY_POOL: [&str; 10] = [
    "moon-hybrid",
    "moon",
    "hadoop-1min",
    "hadoop-5min",
    "vo-v2",
    "ha-v1",
    "no-homestretch",
    "hadoop-fetch-rule",
    "moon-hybrid+preempt",
    "moon-hybrid+fair+preempt",
];

/// Base ids whose trailing digit is the replication degree invariant 3
/// bumps.
const REPLICATION_POOL: [&str; 5] = ["vo-v1", "vo-v2", "ha-v1", "ha-v2", "hadoop-vo-v2"];

/// Policy bases paired with their `+fair` twin for invariant 4.
const FAIR_POOL: [&str; 3] = ["moon-hybrid", "hadoop-1min", "ha-v1"];

fn sample_jobs(rng: &mut StdRng) -> Option<JobStreamSpec> {
    if rng.gen_bool(0.5) {
        return None;
    }
    let arrivals = match rng.gen_range(0u8..3) {
        0 => ArrivalSpec::Batch {
            offsets_secs: (0..rng.gen_range(1usize..4))
                .map(|i| i as f64 * 60.0)
                .collect(),
        },
        1 => ArrivalSpec::Poisson {
            rate_per_hour: rng.gen_range(30.0..120.0),
            count: rng.gen_range(2u32..5),
        },
        _ => ArrivalSpec::Closed {
            clients: rng.gen_range(2u32..4),
            jobs_per_client: rng.gen_range(1u32..3),
            think_secs: rng.gen_range(10.0..60.0),
        },
    };
    Some(JobStreamSpec::new(arrivals))
}

/// Generate a synthetic fleet, write it as a `moon-trace v1` file, and
/// verify it round-trips through the tracefile codec.
fn emit_trace_file(
    case_seed: u64,
    index: u32,
    n_nodes: u32,
    rate: f64,
    horizon_secs: u64,
    out_dir: &Path,
    failures: &mut Vec<Failure>,
) -> Result<String, ScenarioError> {
    let mut cfg = TraceGenConfig::paper(rate);
    cfg.horizon = SimTime::from_secs(horizon_secs);
    let fleet: Vec<_> = (0..n_nodes)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(derive_seed(case_seed, TRACE_SEED_KEY + i as u64));
            TraceGenerator::poisson_insertion(&cfg, &mut rng)
        })
        .collect();
    let dir = out_dir.join("traces");
    std::fs::create_dir_all(&dir)
        .map_err(|e| ScenarioError::msg(format!("cannot create {}: {e}", dir.display())))?;
    let path = dir.join(format!("case-{index}.trace"));
    availability::save_fleet(&path, &fleet)
        .map_err(|e| ScenarioError::msg(format!("cannot write {}: {e}", path.display())))?;
    // Satellite check: fuzzer-emitted traces must round-trip exactly.
    match availability::load_fleet(&path) {
        Ok(back) if back == fleet => {}
        Ok(_) => failures.push(Failure {
            invariant: "trace-roundtrip".into(),
            detail: format!("{} round-trips to a different fleet", path.display()),
        }),
        Err(e) => failures.push(Failure {
            invariant: "trace-roundtrip".into(),
            detail: format!("{} fails to re-load: {e}", path.display()),
        }),
    }
    Ok(path.to_string_lossy().into_owned())
}

/// Sample case `index` of the campaign. Deterministic in
/// `(cfg.seed, index)`; trace-file cases write their fleet under
/// `cfg.out_dir` (and report codec failures via `failures`).
fn sample_case(
    cfg: &FuzzConfig,
    index: u32,
    failures: &mut Vec<Failure>,
) -> Result<FuzzCase, ScenarioError> {
    let case_seed = derive_seed(cfg.seed, index as u64);
    let mut rng = StdRng::seed_from_u64(case_seed);
    let mutation = match rng.gen_range(0u8..14) {
        0 | 1 => Mutation::AddNodes,
        2 | 3 => Mutation::RaiseUnavailability,
        4 | 5 => Mutation::RaiseReplication,
        6 | 7 => Mutation::FairVsFifo,
        8 | 9 => Mutation::RaisePriority,
        10 | 11 => Mutation::SlackDeadlines,
        _ => Mutation::PreemptIdle,
    };
    let horizon_secs = match mutation {
        Mutation::FairVsFifo | Mutation::RaisePriority => rng.gen_range(3600u64..7200),
        // Widely spaced batches must all fit before the horizon.
        Mutation::PreemptIdle => rng.gen_range(5400u64..7200),
        _ => rng.gen_range(2400u64..7200),
    };
    let rate = rng.gen_range(0.05..0.35);
    // Fair-vs-FIFO and priority-boost cases need sustained queueing for
    // the tail to mean anything: a small fleet and tightly packed
    // arrivals. Preempt-idle wants the opposite — room for each job to
    // finish alone. The other mutations sample a roomier range.
    let n_volatile = match mutation {
        Mutation::FairVsFifo | Mutation::RaisePriority => rng.gen_range(4u32..=6),
        Mutation::SlackDeadlines => rng.gen_range(4u32..=8),
        Mutation::PreemptIdle => rng.gen_range(8u32..=14),
        _ => rng.gen_range(6u32..=14),
    };
    let dedicated = match mutation {
        Mutation::FairVsFifo | Mutation::RaisePriority | Mutation::SlackDeadlines => 1,
        Mutation::PreemptIdle => rng.gen_range(2u32..=3),
        _ => rng.gen_range(1u32..=3),
    };
    let axis = match mutation {
        Mutation::AddNodes
        | Mutation::RaiseUnavailability
        | Mutation::FairVsFifo
        | Mutation::RaisePriority
        | Mutation::SlackDeadlines
        | Mutation::PreemptIdle => Axis::Rates(vec![rate]),
        Mutation::RaiseReplication => match rng.gen_range(0u8..5) {
            0 => Axis::Correlated(CorrelatedAxis {
                points: vec![rng.gen_range(0.5..2.0)],
                knob: CorrelatedKnob::SessionsPerHour,
                sessions_per_hour: 1.0,
                session_fraction: rng.gen_range(0.2..0.5),
                background: rng.gen_range(0.05..0.3),
                diurnal: rng.gen_bool(0.5),
            }),
            1 => {
                let path = emit_trace_file(
                    case_seed,
                    index,
                    n_volatile,
                    rate,
                    horizon_secs,
                    &cfg.out_dir,
                    failures,
                )?;
                Axis::TraceFile { path }
            }
            _ => Axis::Rates(vec![rate]),
        },
    };
    let (policies, jobs, tables) = match mutation {
        Mutation::FairVsFifo => {
            let base = FAIR_POOL[rng.gen_range(0..FAIR_POOL.len())];
            let suffix = match cfg.fault {
                Some(Fault::InvertFairShare) => "+fair-inverted",
                None => "+fair",
            };
            // Symmetric: every job runs the panel workload.
            let jobs = JobStreamSpec::new(ArrivalSpec::Closed {
                clients: rng.gen_range(5u32..=7),
                jobs_per_client: rng.gen_range(2u32..=3),
                think_secs: rng.gen_range(2.0..6.0),
            });
            (
                vec![
                    PolicyRef::new(base),
                    PolicyRef::new(format!("{base}{suffix}")),
                ],
                Some(jobs),
                vec![TableSpec {
                    kind: TableKind::Jobs,
                    title: "fuzz jobs{panel}".into(),
                }],
            )
        }
        Mutation::RaisePriority => {
            // Batch arrivals: job ids follow the fixed offsets in both
            // runs, so boosted rows match their base twins by id.
            let base = FAIR_POOL[rng.gen_range(0..FAIR_POOL.len())];
            let n = rng.gen_range(4u32..=6);
            let gap = rng.gen_range(10.0..40.0);
            let jobs = JobStreamSpec::new(ArrivalSpec::Batch {
                offsets_secs: (0..n).map(|i| i as f64 * gap).collect(),
            });
            (
                vec![PolicyRef::new(format!("{base}+prio"))],
                Some(jobs),
                vec![TableSpec {
                    kind: TableKind::Jobs,
                    title: "fuzz jobs{panel}".into(),
                }],
            )
        }
        Mutation::SlackDeadlines => {
            let base = FAIR_POOL[rng.gen_range(0..FAIR_POOL.len())];
            let n = rng.gen_range(3u32..=5);
            let gap = rng.gen_range(15.0..45.0);
            let mut jobs = JobStreamSpec::new(ArrivalSpec::Batch {
                offsets_secs: (0..n).map(|i| i as f64 * gap).collect(),
            });
            jobs.deadlines_secs = (0..rng.gen_range(1usize..=3))
                .map(|i| 300.0 * (i + 1) as f64)
                .collect();
            (
                vec![PolicyRef::new(format!("{base}+edf"))],
                Some(jobs),
                vec![TableSpec {
                    kind: TableKind::Jobs,
                    title: "fuzz jobs{panel}".into(),
                }],
            )
        }
        Mutation::PreemptIdle => {
            let base = FAIR_POOL[rng.gen_range(0..FAIR_POOL.len())];
            let n = rng.gen_range(2u32..=3);
            let gap = rng.gen_range(900.0..1500.0);
            let jobs = JobStreamSpec::new(ArrivalSpec::Batch {
                offsets_secs: (0..n).map(|i| i as f64 * gap).collect(),
            });
            (
                vec![PolicyRef::new(format!("{base}+preempt"))],
                Some(jobs),
                vec![TableSpec {
                    kind: TableKind::Jobs,
                    title: "fuzz jobs{panel}".into(),
                }],
            )
        }
        Mutation::RaiseReplication => {
            let base = REPLICATION_POOL[rng.gen_range(0..REPLICATION_POOL.len())];
            (
                vec![PolicyRef::new(base)],
                sample_jobs(&mut rng),
                vec![TableSpec {
                    kind: TableKind::Time,
                    title: "fuzz{panel}".into(),
                }],
            )
        }
        _ => {
            let base = POLICY_POOL[rng.gen_range(0..POLICY_POOL.len())];
            (
                vec![PolicyRef::new(base)],
                sample_jobs(&mut rng),
                vec![TableSpec {
                    kind: TableKind::Time,
                    title: "fuzz{panel}".into(),
                }],
            )
        }
    };
    let seeds = vec![
        derive_seed(case_seed, 1) % 1_000_000,
        derive_seed(case_seed, 2) % 1_000_000,
    ];
    let spec = ScenarioSpec {
        name: format!("fuzz-case-{index}"),
        title: format!("fuzzed scenario {index} ({})", mutation.as_str()),
        workloads: vec!["quick".into()],
        panels: vec![String::new()],
        policies,
        axis,
        dedicated,
        // Trace axes size the fleet from the file and ignore this,
        // but carrying it keeps the spec shape uniform.
        n_volatile: Some(n_volatile),
        seeds: Some(seeds),
        horizon_secs: Some(horizon_secs),
        jobs,
        telemetry: None,
        tables,
    };
    Ok(FuzzCase {
        index,
        spec,
        mutation,
    })
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

/// Expand and run a spec serially: `results[point][seed]`.
fn run_spec(spec: &ScenarioSpec, runs: &mut u64) -> Result<Vec<Vec<RunResult>>, ScenarioError> {
    let plan = expand::expand(spec)?;
    let seeds = spec.seeds.clone().expect("fuzz specs carry explicit seeds");
    let mut results = Vec::with_capacity(plan.points.len());
    for pt in &plan.points {
        let mut per_seed = Vec::with_capacity(seeds.len());
        for &seed in &seeds {
            *runs += 1;
            per_seed.push(
                moon::Experiment {
                    cluster: pt.cluster.clone(),
                    policy: pt.policy.clone(),
                    workload: pt.workload.clone(),
                    seed,
                }
                .run_stream(pt.jobs.clone()),
            );
        }
        results.push(per_seed);
    }
    Ok(results)
}

/// Derive the mutated sibling spec for a case's base spec.
fn mutant_of(case: &FuzzCase) -> Option<ScenarioSpec> {
    let mut m = case.spec.clone();
    m.name = format!("{}-mut", case.spec.name);
    match case.mutation {
        Mutation::AddNodes => {
            let n = m.n_volatile?;
            m.n_volatile = Some(n + n / 2 + 1);
        }
        Mutation::RaiseUnavailability => match &mut m.axis {
            Axis::Rates(points) => {
                for p in points.iter_mut() {
                    *p += 0.2;
                }
            }
            _ => return None,
        },
        Mutation::RaiseReplication => {
            let id = &case.spec.policies.first()?.id;
            let digits = id.rfind(|c: char| !c.is_ascii_digit()).map(|i| i + 1)?;
            let (head, tail) = id.split_at(digits);
            let k: u32 = tail.parse().ok()?;
            m.policies[0] = PolicyRef::new(format!("{head}{}", k + 1));
        }
        Mutation::RaisePriority => {
            // Boost alternating jobs; the rest keep the default 0.
            m.jobs.as_mut()?.priorities = vec![5, 0];
        }
        Mutation::SlackDeadlines => {
            for d in m.jobs.as_mut()?.deadlines_secs.iter_mut() {
                *d += 600.0;
            }
        }
        Mutation::FairVsFifo => return None, // both rows live in the base spec
        Mutation::PreemptIdle => return None, // single-run check
    }
    Some(m)
}

/// Evaluate one case end to end: round-trip checks, conservation
/// checks on every run, and the mutation's metamorphic comparison.
fn eval_case(case: &FuzzCase, runs: &mut u64) -> Result<Vec<Failure>, ScenarioError> {
    let mut failures = Vec::new();
    let horizon = case.spec.horizon_secs.expect("fuzz specs pin the horizon") as f64;

    // Invariant 6 — the generated spec round-trips bit-exactly.
    if let Some(detail) = invariants::check_roundtrip(&case.spec) {
        failures.push(Failure {
            invariant: "inv6-roundtrip".into(),
            detail,
        });
    }

    let base = run_spec(&case.spec, runs)?;
    for point in &base {
        for detail in invariants::check_conservation(point) {
            failures.push(Failure {
                invariant: "inv5-conservation".into(),
                detail,
            });
        }
    }

    match case.mutation {
        Mutation::FairVsFifo => {
            // Row 0 is FIFO, row 1 the fair(-inverted) twin; single
            // panel and column, so the rows are points 0 and 1.
            let fifo = invariants::pooled_p95_queue_delay(&base[0]);
            let fair = invariants::pooled_p95_queue_delay(&base[1]);
            if let (Some(fifo), Some(fair)) = (fifo, fair) {
                if let Some(detail) = invariants::check_fair_tail(fifo, fair) {
                    failures.push(Failure {
                        invariant: "inv4-fair-tail".into(),
                        detail,
                    });
                }
            }
        }
        Mutation::PreemptIdle => {
            if let Some(detail) = invariants::check_preempt_idle(&base[0]) {
                failures.push(Failure {
                    invariant: "inv9-preempt-idle".into(),
                    detail,
                });
            }
        }
        Mutation::RaisePriority | Mutation::SlackDeadlines => {
            if let Some(mutant) = mutant_of(case) {
                if let Some(detail) = invariants::check_roundtrip(&mutant) {
                    failures.push(Failure {
                        invariant: "inv6-roundtrip".into(),
                        detail,
                    });
                }
                let mutated = run_spec(&mutant, runs)?;
                for point in &mutated {
                    for detail in invariants::check_conservation(point) {
                        failures.push(Failure {
                            invariant: "inv5-conservation".into(),
                            detail,
                        });
                    }
                }
                let check = match case.mutation {
                    Mutation::RaisePriority => {
                        // Boosted rows carry their nonzero priority in
                        // the SLO output; match base twins by job id.
                        let ids: std::collections::BTreeSet<u32> = mutated[0]
                            .iter()
                            .filter_map(|r| r.jobs.as_ref())
                            .flatten()
                            .filter(|j| j.priority > 0)
                            .map(|j| j.job)
                            .collect();
                        let before = invariants::pooled_p95_queue_delay_of(&base[0], |j| {
                            ids.contains(&j.job)
                        });
                        let after =
                            invariants::pooled_p95_queue_delay_of(&mutated[0], |j| j.priority > 0);
                        match (before, after) {
                            (Some(b), Some(a)) => invariants::check_priority_boost(b, a)
                                .map(|d| ("inv7-priority-boost", d)),
                            _ => None,
                        }
                    }
                    Mutation::SlackDeadlines => {
                        invariants::check_slack_deadlines(&base[0], &mutated[0])
                            .map(|d| ("inv8-deadline-slack", d))
                    }
                    _ => unreachable!("outer arm is priority/deadline only"),
                };
                if let Some((invariant, detail)) = check {
                    failures.push(Failure {
                        invariant: invariant.into(),
                        detail,
                    });
                }
            }
        }
        _ => {
            if let Some(mutant) = mutant_of(case) {
                if let Some(detail) = invariants::check_roundtrip(&mutant) {
                    failures.push(Failure {
                        invariant: "inv6-roundtrip".into(),
                        detail,
                    });
                }
                let mutated = run_spec(&mutant, runs)?;
                for point in &mutated {
                    for detail in invariants::check_conservation(point) {
                        failures.push(Failure {
                            invariant: "inv5-conservation".into(),
                            detail,
                        });
                    }
                }
                let base_score = invariants::score(&base[0], horizon);
                let mut_score = invariants::score(&mutated[0], horizon);
                let check = match case.mutation {
                    Mutation::AddNodes => invariants::check_add_nodes(base_score, mut_score)
                        .map(|d| ("inv1-add-nodes", d)),
                    Mutation::RaiseUnavailability => {
                        invariants::check_raise_unavailability(base_score, mut_score)
                            .map(|d| ("inv2-raise-unavailability", d))
                    }
                    Mutation::RaiseReplication => invariants::check_raise_replication(
                        invariants::completed_count(&base[0]),
                        invariants::completed_count(&mutated[0]),
                        base_score,
                        horizon,
                    )
                    .map(|d| ("inv3-raise-replication", d)),
                    _ => unreachable!("handled above"),
                };
                if let Some((invariant, detail)) = check {
                    failures.push(Failure {
                        invariant: invariant.into(),
                        detail,
                    });
                }
            }
        }
    }
    Ok(failures)
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

fn halve_jobs(jobs: &JobStreamSpec) -> Option<JobStreamSpec> {
    let arrivals = match &jobs.arrivals {
        ArrivalSpec::Batch { offsets_secs } if offsets_secs.len() > 1 => ArrivalSpec::Batch {
            offsets_secs: offsets_secs[..offsets_secs.len() / 2].to_vec(),
        },
        ArrivalSpec::Poisson {
            rate_per_hour,
            count,
        } if *count > 1 => ArrivalSpec::Poisson {
            rate_per_hour: *rate_per_hour,
            count: count / 2,
        },
        ArrivalSpec::Closed {
            clients,
            jobs_per_client,
            think_secs,
        } => {
            // Keep ≥2 clients so the contention the tail-latency
            // invariant needs survives shrinking.
            let c = (clients / 2).max(2);
            let j = (jobs_per_client / 2).max(1);
            if c == *clients && j == *jobs_per_client {
                return None;
            }
            ArrivalSpec::Closed {
                clients: c,
                jobs_per_client: j,
                think_secs: *think_secs,
            }
        }
        _ => return None,
    };
    Some(JobStreamSpec {
        arrivals,
        ..jobs.clone()
    })
}

/// Candidate one-step shrinks of a case, in preference order.
fn shrink_candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    if !matches!(case.spec.axis, Axis::TraceFile { .. }) {
        if let Some(n) = case.spec.n_volatile {
            if n >= 8 {
                let mut c = case.clone();
                c.spec.n_volatile = Some(n / 2);
                out.push(c);
            }
        }
    }
    if let Some(jobs) = &case.spec.jobs {
        if let Some(smaller) = halve_jobs(jobs) {
            let mut c = case.clone();
            c.spec.jobs = Some(smaller);
            out.push(c);
        }
    }
    if let Some(h) = case.spec.horizon_secs {
        if h > 1800 {
            let mut c = case.clone();
            c.spec.horizon_secs = Some(h / 2);
            out.push(c);
        }
    }
    out
}

/// Deterministic minimizer: greedily apply the first one-step shrink
/// that still reproduces `invariant`, until none does or the budget
/// runs out.
fn shrink(case: &FuzzCase, invariant: &str, runs: &mut u64) -> FuzzCase {
    let mut cur = case.clone();
    let mut budget = SHRINK_BUDGET;
    'outer: while budget > 0 {
        for cand in shrink_candidates(&cur) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            let reproduces = eval_case(&cand, runs)
                .map(|fs| fs.iter().any(|f| f.invariant == invariant))
                .unwrap_or(false);
            if reproduces {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

// ---------------------------------------------------------------------
// The campaign
// ---------------------------------------------------------------------

/// Run a fuzz campaign: sample `n_cases` scenarios, check every
/// invariant, shrink failures, and write repro specs under
/// `cfg.out_dir`. Deterministic in `cfg.seed` (serial execution, no
/// wall-clock anywhere).
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzReport, ScenarioError> {
    std::fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| ScenarioError::msg(format!("cannot create {}: {e}", cfg.out_dir.display())))?;
    let mut report = FuzzReport {
        n_cases: cfg.n_cases,
        seed: cfg.seed,
        quick: crate::quick_mode(),
        fault: cfg.fault,
        experiments: 0,
        case_mutations: Vec::with_capacity(cfg.n_cases as usize),
        violations: Vec::new(),
    };
    for index in 0..cfg.n_cases {
        let mut failures = Vec::new();
        let case = sample_case(cfg, index, &mut failures)?;
        report.case_mutations.push(case.mutation);
        failures.extend(eval_case(&case, &mut report.experiments)?);
        for f in failures {
            // Shrink while the same invariant reproduces, then write
            // the minimized spec as a ready-to-run repro. Sampling
            // failures (trace round-trip) skip shrinking — the spec
            // isn't what failed.
            let repro = if f.invariant.starts_with("inv") {
                let small = shrink(&case, &f.invariant, &mut report.experiments);
                let path = cfg
                    .out_dir
                    .join(format!("repro-case-{index}-{}.toml", f.invariant));
                simkit::fsio::atomic_write(&path, codec::to_string(&small.spec).as_bytes())
                    .map_err(|e| {
                        ScenarioError::msg(format!("cannot write {}: {e}", path.display()))
                    })?;
                Some(path.to_string_lossy().into_owned())
            } else {
                None
            };
            report.violations.push(Violation {
                case: index,
                mutation: case.mutation,
                invariant: f.invariant,
                detail: f.detail,
                repro,
            });
        }
        if (index + 1) % 25 == 0 || index + 1 == cfg.n_cases {
            eprintln!(
                "fuzz: {}/{} cases, {} runs, {} violation(s)",
                index + 1,
                cfg.n_cases,
                report.experiments,
                report.violations.len()
            );
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: u32, seed: u64, fault: Option<Fault>) -> FuzzConfig {
        let out = std::env::temp_dir().join(format!("moon-fuzz-test-{seed}-{n}"));
        FuzzConfig {
            n_cases: n,
            seed,
            out_dir: out,
            fault,
        }
    }

    #[test]
    fn sampled_specs_are_valid_and_round_trip() {
        let cfg = cfg(30, 99, None);
        for index in 0..cfg.n_cases {
            let mut failures = Vec::new();
            let case = sample_case(&cfg, index, &mut failures).unwrap();
            assert!(
                failures.is_empty(),
                "case {index}: {:?}",
                failures[0].detail
            );
            assert_eq!(
                invariants::check_roundtrip(&case.spec),
                None,
                "case {index}"
            );
            // Every sampled spec must expand (policies resolve, axis
            // well-formed) without running anything.
            crate::expand(&case.spec)
                .unwrap_or_else(|e| panic!("case {index} fails to expand: {e}"));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let cfg = cfg(10, 7, None);
        for index in 0..cfg.n_cases {
            let a = sample_case(&cfg, index, &mut Vec::new()).unwrap();
            let b = sample_case(&cfg, index, &mut Vec::new()).unwrap();
            assert_eq!(a.spec, b.spec, "case {index}");
            assert_eq!(a.mutation, b.mutation, "case {index}");
        }
    }

    #[test]
    fn mutants_perturb_the_sampled_dimension() {
        let cfg = cfg(40, 3, None);
        for index in 0..cfg.n_cases {
            let case = sample_case(&cfg, index, &mut Vec::new()).unwrap();
            match case.mutation {
                Mutation::FairVsFifo => {
                    assert_eq!(case.spec.policies.len(), 2);
                    assert!(case.spec.policies[1].id.ends_with("+fair"));
                    assert!(mutant_of(&case).is_none());
                }
                Mutation::AddNodes => {
                    let m = mutant_of(&case).unwrap();
                    assert!(m.n_volatile.unwrap() > case.spec.n_volatile.unwrap());
                }
                Mutation::RaiseUnavailability => {
                    let m = mutant_of(&case).unwrap();
                    let (Axis::Rates(a), Axis::Rates(b)) = (&case.spec.axis, &m.axis) else {
                        panic!("case {index}: expected rate axes");
                    };
                    assert!(b[0] > a[0]);
                }
                Mutation::RaiseReplication => {
                    let m = mutant_of(&case).unwrap();
                    assert_ne!(m.policies[0].id, case.spec.policies[0].id);
                    crate::policy::resolve(&m.policies[0].id)
                        .unwrap_or_else(|e| panic!("case {index}: {e}"));
                }
                Mutation::RaisePriority => {
                    assert!(case.spec.policies[0].id.ends_with("+prio"));
                    assert!(case.spec.jobs.as_ref().unwrap().priorities.is_empty());
                    let m = mutant_of(&case).unwrap();
                    assert_eq!(m.jobs.as_ref().unwrap().priorities, vec![5, 0]);
                    assert_eq!(invariants::check_roundtrip(&m), None);
                }
                Mutation::SlackDeadlines => {
                    assert!(case.spec.policies[0].id.ends_with("+edf"));
                    let base = &case.spec.jobs.as_ref().unwrap().deadlines_secs;
                    assert!(!base.is_empty());
                    let m = mutant_of(&case).unwrap();
                    let slacked = &m.jobs.as_ref().unwrap().deadlines_secs;
                    assert!(base
                        .iter()
                        .zip(slacked)
                        .all(|(b, s)| (s - b - 600.0).abs() < 1e-9));
                    assert_eq!(invariants::check_roundtrip(&m), None);
                }
                Mutation::PreemptIdle => {
                    assert!(case.spec.policies[0].id.ends_with("+preempt"));
                    assert!(mutant_of(&case).is_none());
                    let ArrivalSpec::Batch { offsets_secs } =
                        &case.spec.jobs.as_ref().unwrap().arrivals
                    else {
                        panic!("case {index}: preempt-idle uses batch arrivals");
                    };
                    assert!(offsets_secs.windows(2).all(|w| w[1] - w[0] >= 900.0));
                }
            }
        }
    }

    #[test]
    fn fault_injection_swaps_in_the_inverted_policy() {
        let cfg = cfg(40, 3, Some(Fault::InvertFairShare));
        let mut saw_fair = false;
        for index in 0..cfg.n_cases {
            let case = sample_case(&cfg, index, &mut Vec::new()).unwrap();
            if case.mutation == Mutation::FairVsFifo {
                saw_fair = true;
                assert!(case.spec.policies[1].id.ends_with("+fair-inverted"));
            }
        }
        assert!(saw_fair, "40 cases must sample at least one fair pair");
    }

    #[test]
    fn report_json_is_deterministic_and_wellformed() {
        let r = FuzzReport {
            n_cases: 2,
            seed: 7,
            quick: true,
            fault: Some(Fault::InvertFairShare),
            experiments: 12,
            case_mutations: vec![Mutation::AddNodes, Mutation::FairVsFifo],
            violations: vec![Violation {
                case: 1,
                mutation: Mutation::FairVsFifo,
                invariant: "inv4-fair-tail".into(),
                detail: "p95 \"bad\"".into(),
                repro: Some("out/repro.toml".into()),
            }],
        };
        let j = r.to_json();
        assert_eq!(j, r.to_json());
        assert!(j.contains("\"fault\": \"invert-fair\""), "{j}");
        assert!(j.contains("\\\"bad\\\""), "{j}");
        assert!(j.contains("\"mutations\": [\"add-nodes\", \"fair-vs-fifo\"]"));
    }

    #[test]
    fn shrink_candidates_halve_each_dimension() {
        let cfg = cfg(60, 11, None);
        for index in 0..cfg.n_cases {
            let case = sample_case(&cfg, index, &mut Vec::new()).unwrap();
            for cand in shrink_candidates(&case) {
                // Every candidate stays a valid, round-trippable spec.
                assert_eq!(invariants::check_roundtrip(&cand.spec), None);
                crate::expand(&cand.spec).unwrap();
            }
        }
    }
}
