//! Expanding a [`ScenarioSpec`] into a concrete experiment grid.
//!
//! Expansion resolves every name in the spec (workloads — including
//! `sleep(…)` calibration runs — policies, and the unavailability
//! axis) into a flat, grid-ordered list of fully-configured
//! [`Point`]s: panel-major, then policy (table row), then axis point
//! (table column). The sweep harness runs the points; the
//! [`render`](crate::render) module folds the results back into the
//! spec's tables using the same index math.

use crate::knobs::{cluster, maybe_shrink, quick_mode};
use crate::spec::{
    ArrivalSpec, Axis, CorrelatedAxis, CorrelatedKnob, JobStreamSpec, LoadAxis, ScenarioError,
    ScenarioSpec,
};
use crate::{policy, workload};
use availability::{stats::fleet_mean_unavailability, AvailabilityTrace, TraceGenConfig};
use moon::{ClusterConfig, PolicyConfig};
use rand::SeedableRng;
use simkit::{SimDuration, SimTime};
use std::path::{Path, PathBuf};
use workloads::{ArrivalModel, DurationModel, JobStream, WorkloadSpec};

/// One grid point of a sweep (formerly `bench::Point`; `bench`
/// re-exports it unchanged).
#[derive(Debug, Clone)]
pub struct Point {
    /// Policy bundle.
    pub policy: PolicyConfig,
    /// Cluster (embeds the unavailability rate / trace overrides).
    pub cluster: ClusterConfig,
    /// Workload.
    pub workload: WorkloadSpec,
    /// Multi-job arrival stream (None = single-job run).
    pub jobs: Option<JobStream>,
    /// Telemetry recording config (None = off). Resolved from the
    /// spec's `[telemetry]` knob; every run of the grid records into
    /// its own per-run buffers.
    pub telemetry: Option<simkit::TelemetryConfig>,
}

/// A fully-resolved scenario: the flat experiment grid plus the table
/// layout needed to render results.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The spec this plan was expanded from.
    pub spec: ScenarioSpec,
    /// Grid-ordered points: panel-major, then policy, then column.
    pub points: Vec<Point>,
    /// Table-row labels (one per policy, after overrides).
    pub row_labels: Vec<String>,
    /// Table-column labels (`p=0.3`, `s/h=1`, `trace`).
    pub col_labels: Vec<String>,
    /// Numeric axis values behind the columns (trace axes report the
    /// fleet's mean unavailability).
    pub axis_values: Vec<f64>,
    /// Resolved workload name per panel (`sleep(sort)`, …).
    pub workload_names: Vec<String>,
}

impl Plan {
    /// Flat index of (panel, policy row, axis column).
    pub fn point_index(&self, panel: usize, row: usize, col: usize) -> usize {
        (panel * self.row_labels.len() + row) * self.col_labels.len() + col
    }

    /// Total simulation runs per seed.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }
}

/// Root for the per-column fleet RNG streams of correlated axes. A
/// fixed constant (not the experiment seed): every policy row and seed
/// replays the *same* fleet at a given column, the way the paper
/// replays one recorded trace across configurations — seeds then vary
/// scheduling/compute randomness only.
const FLEET_SEED_ROOT: u64 = 0x5CE9_A210_F1EE_7000;

/// Resolve a trace-file path against the current directory, then the
/// repository root (so `moon-cli run trace-replay` works from both).
fn resolve_trace_path(path: &str) -> PathBuf {
    let direct = PathBuf::from(path);
    if direct.exists() {
        return direct;
    }
    let from_repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path);
    if from_repo_root.exists() {
        from_repo_root
    } else {
        direct
    }
}

/// Per-column cluster templates (volatile trace setup, metadata rate).
/// The dedicated count is applied per policy row afterwards.
enum ColumnKind {
    Rate(f64),
    /// A load-axis column: fixed churn, optional fleet-size override
    /// (the per-column arrival stream lives in the plan's points).
    Load {
        rate: f64,
        n_volatile: Option<u32>,
    },
    Fleet {
        traces: Vec<AvailabilityTrace>,
        mean_unavailability: f64,
        /// Volatile-node count override (trace files fix the fleet
        /// size; correlated fleets are generated to match the cluster).
        n_volatile: Option<u32>,
        /// Run-horizon override: a replayed trace file bounds the run
        /// to its own recorded window (a shorter trace must not be
        /// padded with 6 silent always-available hours). Correlated
        /// fleets are generated to the cluster horizon, so no override.
        horizon: Option<SimTime>,
    },
}

struct Column {
    label: String,
    value: f64,
    kind: ColumnKind,
}

fn correlated_columns(
    axis: &CorrelatedAxis,
    horizon_secs: Option<u64>,
    n_volatile: Option<u32>,
) -> Result<Vec<Column>, ScenarioError> {
    // Fleet size follows the (quick-mode aware) cluster shape unless
    // the spec pins it.
    let shape = cluster(0.0, 6);
    let fleet_size = n_volatile.unwrap_or(shape.n_volatile);
    let mut columns = Vec::new();
    for (col, &point) in axis.points.iter().enumerate() {
        let (sessions_per_hour, session_fraction) = match axis.knob {
            CorrelatedKnob::SessionsPerHour => (point, axis.session_fraction),
            CorrelatedKnob::SessionFraction => (axis.sessions_per_hour, point),
        };
        let mut background = TraceGenConfig {
            unavailability: axis.background,
            exact_rate: false,
            ..Default::default()
        };
        if let Some(h) = horizon_secs {
            background.horizon = SimTime::from_secs(h);
        }
        let cfg = availability::CorrelatedConfig {
            n_nodes: fleet_size as usize,
            background,
            sessions_per_hour,
            session_fraction_mean: session_fraction,
            diurnal: axis.diurnal,
            ..Default::default()
        };
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(simkit::derive_seed(FLEET_SEED_ROOT, col as u64));
        let traces = availability::generate_fleet(&cfg, &mut rng);
        let mean = fleet_mean_unavailability(&traces);
        columns.push(Column {
            label: format!("{}={point}", axis.knob.col_prefix()),
            value: point,
            kind: ColumnKind::Fleet {
                traces,
                mean_unavailability: mean,
                n_volatile,
                horizon: None,
            },
        });
    }
    Ok(columns)
}

fn columns_for(spec: &ScenarioSpec) -> Result<Vec<Column>, ScenarioError> {
    match &spec.axis {
        Axis::Rates(rates) => Ok(rates
            .iter()
            .map(|&r| Column {
                label: format!("p={r}"),
                value: r,
                kind: ColumnKind::Rate(r),
            })
            .collect()),
        Axis::Correlated(c) => correlated_columns(c, spec.horizon_secs, spec.n_volatile),
        Axis::Load(l) => {
            let base = load_base_stream(spec)?;
            let prefix = match base.arrivals {
                ArrivalSpec::Poisson { .. } => "jobs/h",
                ArrivalSpec::Closed { .. } => "clients",
                ArrivalSpec::Batch { .. } => unreachable!("load_base_stream rejects batch"),
            };
            Ok(l.points
                .iter()
                .map(|&p| Column {
                    label: format!("{prefix}={p}"),
                    value: p,
                    kind: ColumnKind::Load {
                        rate: l.rate,
                        // The axis's own override wins over the spec's.
                        n_volatile: l.n_volatile.or(spec.n_volatile),
                    },
                })
                .collect())
        }
        Axis::TraceFile { path } => {
            let resolved = resolve_trace_path(path);
            let traces = availability::load_fleet(&resolved)?;
            if traces.is_empty() {
                return Err(ScenarioError::msg(format!(
                    "trace file {} declares zero nodes",
                    resolved.display()
                )));
            }
            let mean = fleet_mean_unavailability(&traces);
            let n_volatile = traces.len() as u32;
            let horizon = traces
                .iter()
                .map(|t| t.horizon())
                .max()
                .expect("non-empty fleet");
            Ok(vec![Column {
                label: "trace".into(),
                value: mean,
                kind: ColumnKind::Fleet {
                    traces,
                    mean_unavailability: mean,
                    n_volatile: Some(n_volatile),
                    horizon: Some(horizon),
                },
            }])
        }
    }
}

fn cluster_for(
    column: &Column,
    dedicated: u32,
    n_volatile: Option<u32>,
    horizon_secs: Option<u64>,
) -> ClusterConfig {
    let mut c = match &column.kind {
        ColumnKind::Rate(rate) => {
            let mut c = cluster(*rate, dedicated);
            if let Some(n) = n_volatile {
                // A spec-level fleet-size pin applies even in quick
                // mode — the fuzzer samples small fleets this way;
                // quick mode still shrinks the per-job work.
                c.n_volatile = n;
                c.n_dedicated = dedicated;
            }
            c
        }
        ColumnKind::Load { rate, n_volatile } => {
            let mut c = cluster(*rate, dedicated);
            if let Some(n) = n_volatile {
                // Fleet-scale scenarios pin their node counts even in
                // quick mode — scale is the point; quick mode still
                // shrinks the per-job work.
                c.n_volatile = *n;
                c.n_dedicated = dedicated;
            }
            c
        }
        ColumnKind::Fleet {
            traces,
            mean_unavailability,
            n_volatile,
            horizon,
        } => {
            let mut c = cluster(0.0, dedicated);
            if let Some(n) = n_volatile {
                c.n_volatile = *n;
            }
            if let Some(h) = horizon {
                // The trace file's own window bounds the run (the
                // explicit horizon_secs override below still wins).
                c.horizon = *h;
            }
            // The synthetic generator is bypassed; the recorded rate is
            // kept as run metadata (reports, estimator priors are
            // unaffected — the estimator observes heartbeats).
            c.unavailability = *mean_unavailability;
            // Volatile nodes replay the fleet; dedicated nodes (ids ≥
            // n_volatile) fall through to always-available.
            c.trace_overrides = Some(traces.clone());
            c
        }
    };
    if let Some(h) = horizon_secs {
        c.horizon = SimTime::from_secs(h);
        c.trace.horizon = SimTime::from_secs(h);
    }
    c
}

/// Expand a spec into its runnable plan. Resolution can run
/// calibration experiments (`sleep(…)` workloads) and read trace
/// files, so this is fallible and not free — expand once, run many
/// seeds.
pub fn expand(spec: &ScenarioSpec) -> Result<Plan, ScenarioError> {
    if spec.panels.len() != spec.workloads.len() {
        return Err(ScenarioError::msg(format!(
            "`panels` has {} entries but `workloads` has {}",
            spec.panels.len(),
            spec.workloads.len()
        )));
    }
    let workloads: Vec<WorkloadSpec> = spec
        .workloads
        .iter()
        .map(|w| workload::resolve(w))
        .collect::<Result<_, _>>()?;
    let policies: Vec<PolicyConfig> = spec
        .policies
        .iter()
        .map(|p| {
            let mut cfg = policy::resolve(&p.id)?;
            if let Some(label) = &p.label {
                cfg.label = label.clone();
            }
            Ok(cfg)
        })
        .collect::<Result<_, ScenarioError>>()?;
    let columns = columns_for(spec)?;
    // Load axes scale the arrival stream per column; every other axis
    // shares one resolved stream across the grid, exactly as before.
    let col_streams: Vec<Option<JobStream>> = match &spec.axis {
        Axis::Load(l) => load_streams(spec, l)?.into_iter().map(Some).collect(),
        _ => {
            let stream = spec.jobs.as_ref().map(resolve_stream).transpose()?;
            vec![stream; columns.len()]
        }
    };

    let mut points = Vec::with_capacity(workloads.len() * policies.len() * columns.len());
    for w in &workloads {
        for (p, pref) in policies.iter().zip(&spec.policies) {
            let dedicated = pref.dedicated.unwrap_or(spec.dedicated);
            for (col, column) in columns.iter().enumerate() {
                points.push(Point {
                    policy: p.clone(),
                    cluster: cluster_for(column, dedicated, spec.n_volatile, spec.horizon_secs),
                    workload: maybe_shrink(w.clone()),
                    jobs: col_streams[col].clone(),
                    telemetry: spec.telemetry.as_ref().map(|t| t.to_config()),
                });
            }
        }
    }
    Ok(Plan {
        spec: spec.clone(),
        row_labels: policies.iter().map(|p| p.label.clone()).collect(),
        col_labels: columns.iter().map(|c| c.label.clone()).collect(),
        axis_values: columns.iter().map(|c| c.value).collect(),
        workload_names: workloads.iter().map(|w| w.name.clone()).collect(),
        points,
    })
}

/// Resolve a declarative job stream: workload names become (quick-mode
/// shrunk) specs, arrival parameters become the runtime model. The
/// resolved stream is shared by every grid point, so all policy rows
/// and seeds face the same arrival pattern.
fn resolve_stream(spec: &JobStreamSpec) -> Result<JobStream, ScenarioError> {
    let workloads: Vec<WorkloadSpec> = spec
        .workloads
        .iter()
        .map(|w| workload::resolve(w).map(maybe_shrink))
        .collect::<Result<_, _>>()?;
    let arrivals = match &spec.arrivals {
        ArrivalSpec::Batch { offsets_secs } => ArrivalModel::Batch(
            offsets_secs
                .iter()
                .map(|&s| SimDuration::from_secs_f64(s))
                .collect(),
        ),
        ArrivalSpec::Poisson {
            rate_per_hour,
            count,
        } => ArrivalModel::Poisson {
            rate_per_hour: *rate_per_hour,
            count: *count,
        },
        ArrivalSpec::Closed {
            clients,
            jobs_per_client,
            think_secs,
        } => ArrivalModel::Closed {
            clients: *clients,
            jobs_per_client: *jobs_per_client,
            think: DurationModel::around(SimDuration::from_secs_f64(*think_secs)),
        },
    };
    Ok(JobStream {
        arrivals,
        workloads,
        deadlines: spec
            .deadlines_secs
            .iter()
            .map(|&s| SimDuration::from_secs_f64(s))
            .collect(),
        priorities: spec.priorities.iter().map(|&p| p as i32).collect(),
        tenants: spec.tenants.clone(),
        tenant_weights: spec.tenant_weights.clone(),
        tenant_min_slots: spec.tenant_min_slots.clone(),
    })
}

/// The stream a load axis scales: the spec's `[jobs]` table, which
/// must exist and carry a scalable (Poisson or closed) arrival model.
fn load_base_stream(spec: &ScenarioSpec) -> Result<&JobStreamSpec, ScenarioError> {
    let base = spec.jobs.as_ref().ok_or_else(|| {
        ScenarioError::msg("a load axis requires a `[jobs]` stream to scale per column")
    })?;
    if matches!(base.arrivals, ArrivalSpec::Batch { .. }) {
        return Err(ScenarioError::msg(
            "a load axis cannot scale a batch jobs stream (use poisson or closed)",
        ));
    }
    Ok(base)
}

/// One resolved stream per load-axis column: the base stream with its
/// arrival intensity replaced by the column's point.
fn load_streams(spec: &ScenarioSpec, axis: &LoadAxis) -> Result<Vec<JobStream>, ScenarioError> {
    let base = load_base_stream(spec)?;
    axis.points
        .iter()
        .map(|&point| {
            let arrivals = match &base.arrivals {
                ArrivalSpec::Poisson { count, .. } => ArrivalSpec::Poisson {
                    rate_per_hour: point,
                    count: *count,
                },
                ArrivalSpec::Closed {
                    jobs_per_client,
                    think_secs,
                    ..
                } => ArrivalSpec::Closed {
                    clients: (point.round() as u32).max(1),
                    jobs_per_client: *jobs_per_client,
                    think_secs: *think_secs,
                },
                ArrivalSpec::Batch { .. } => unreachable!("load_base_stream rejects batch"),
            };
            resolve_stream(&JobStreamSpec {
                arrivals,
                ..base.clone()
            })
        })
        .collect()
}

/// Is quick mode shrinking this plan? (Re-exported convenience so
/// callers can annotate output.)
pub fn is_quick() -> bool {
    quick_mode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn fig6_expands_to_the_binary_grid() {
        let plan = expand(&registry::find("fig6").unwrap()).unwrap();
        // 2 panels × 8 policies × 3 rates.
        assert_eq!(plan.points.len(), 48);
        assert_eq!(plan.row_labels.len(), 8);
        assert_eq!(plan.row_labels[0], "VO-V1");
        assert_eq!(plan.row_labels[7], "HA-V3");
        assert_eq!(plan.col_labels, vec!["p=0.1", "p=0.3", "p=0.5"]);
        // Grid order: panel-major, policy, column.
        let idx = plan.point_index(1, 2, 1);
        assert_eq!(idx, (8 + 2) * 3 + 1);
        let pt = &plan.points[idx];
        assert_eq!(pt.workload.name, "word count");
        assert_eq!(pt.policy.label, "VO-V3");
        assert!((pt.cluster.unavailability - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fig7_dedicated_overrides_apply() {
        let plan = expand(&registry::find("fig7").unwrap()).unwrap();
        assert_eq!(plan.row_labels[1], "MOON-HybridD3");
        if !quick_mode() {
            let pt = &plan.points[plan.point_index(0, 1, 0)];
            assert_eq!(pt.cluster.n_dedicated, 3);
        }
    }

    #[test]
    fn correlated_axis_builds_shared_fleets() {
        let plan = expand(&registry::find("blackout").unwrap()).unwrap();
        assert_eq!(plan.col_labels[0], "frac=0.5");
        let a = &plan.points[plan.point_index(0, 0, 2)];
        let b = &plan.points[plan.point_index(0, 2, 2)];
        let (ta, tb) = (
            a.cluster.trace_overrides.as_ref().unwrap(),
            b.cluster.trace_overrides.as_ref().unwrap(),
        );
        // Same column ⇒ same fleet for every policy row.
        assert_eq!(ta, tb);
        assert!(a.cluster.unavailability > 0.0);
        // Different columns ⇒ different fleets.
        let c = &plan.points[plan.point_index(0, 0, 0)];
        assert_ne!(ta, c.cluster.trace_overrides.as_ref().unwrap());
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = registry::find("diurnal-lab").unwrap();
        let a = expand(&spec).unwrap();
        let b = expand(&spec).unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.cluster.trace_overrides, y.cluster.trace_overrides);
        }
    }

    #[test]
    fn unknown_names_surface_as_errors() {
        let mut spec = registry::find("fig6").unwrap();
        spec.policies[0].id = "mystery".into();
        assert!(expand(&spec).unwrap_err().message.contains("mystery"));
        let mut spec = registry::find("fig6").unwrap();
        spec.workloads[0] = "mystery".into();
        assert!(expand(&spec).unwrap_err().message.contains("mystery"));
        let spec = ScenarioSpec {
            axis: crate::spec::Axis::TraceFile {
                path: "does/not/exist.trace".into(),
            },
            ..registry::find("trace-replay").unwrap()
        };
        assert!(expand(&spec)
            .unwrap_err()
            .message
            .contains("does/not/exist.trace"));
    }

    #[test]
    fn load_axis_scales_the_stream_per_column() {
        let plan = expand(&registry::find("fleet-1k").unwrap()).unwrap();
        // 1 panel × 2 policies × 4 load points.
        assert_eq!(plan.points.len(), 8);
        assert_eq!(
            plan.col_labels,
            vec!["jobs/h=30", "jobs/h=60", "jobs/h=120", "jobs/h=240"]
        );
        assert_eq!(plan.axis_values, vec![30.0, 60.0, 120.0, 240.0]);
        for (col, &rate) in [30.0, 60.0, 120.0, 240.0].iter().enumerate() {
            let pt = &plan.points[plan.point_index(0, 0, col)];
            // The fleet shape is pinned (even in quick mode) and churn
            // stays fixed across columns; only the arrival rate moves.
            assert_eq!(pt.cluster.n_volatile, 1_000);
            assert_eq!(pt.cluster.n_dedicated, 100);
            assert!((pt.cluster.unavailability - 0.3).abs() < 1e-12);
            let stream = pt.jobs.as_ref().expect("load column carries a stream");
            match &stream.arrivals {
                ArrivalModel::Poisson {
                    rate_per_hour,
                    count,
                } => {
                    assert_eq!(*rate_per_hour, rate);
                    assert_eq!(*count, 12);
                }
                other => panic!("expected a Poisson stream, got {other:?}"),
            }
        }
    }

    #[test]
    fn load_axis_scales_closed_client_counts() {
        let mut spec = registry::find("fleet-1k").unwrap();
        spec.jobs = Some(crate::spec::JobStreamSpec::new(ArrivalSpec::Closed {
            clients: 2,
            jobs_per_client: 3,
            think_secs: 30.0,
        }));
        let plan = expand(&spec).unwrap();
        assert_eq!(plan.col_labels[0], "clients=30");
        let pt = &plan.points[plan.point_index(0, 0, 2)];
        match &pt.jobs.as_ref().unwrap().arrivals {
            ArrivalModel::Closed {
                clients,
                jobs_per_client,
                ..
            } => {
                assert_eq!(*clients, 120);
                assert_eq!(*jobs_per_client, 3);
            }
            other => panic!("expected a closed stream, got {other:?}"),
        }
    }

    #[test]
    fn load_axis_requires_a_scalable_stream() {
        let mut spec = registry::find("fleet-1k").unwrap();
        spec.jobs = None;
        let e = expand(&spec).unwrap_err();
        assert!(e.message.contains("requires a `[jobs]` stream"), "{e}");
        let mut spec = registry::find("fleet-1k").unwrap();
        spec.jobs = Some(crate::spec::JobStreamSpec::new(ArrivalSpec::Batch {
            offsets_secs: vec![0.0],
        }));
        let e = expand(&spec).unwrap_err();
        assert!(e.message.contains("batch"), "{e}");
    }

    #[test]
    fn horizon_override_reaches_cluster_and_tracegen() {
        let mut spec = registry::find("high-churn").unwrap();
        spec.horizon_secs = Some(3600);
        let plan = expand(&spec).unwrap();
        let c = &plan.points[0].cluster;
        assert_eq!(c.horizon, SimTime::from_secs(3600));
        assert_eq!(c.trace.horizon, SimTime::from_secs(3600));
    }
}
