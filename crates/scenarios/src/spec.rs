//! The declarative scenario model.
//!
//! A [`ScenarioSpec`] is *data*: it names workloads, policies, an
//! unavailability axis, seeds and output tables, and the engine turns
//! it into a grid of fully-configured experiments
//! ([`expand`](crate::expand::expand)). Everything a `bench` binary used to
//! hard-code in Rust lives here instead, so new workloads and
//! volatility regimes are a TOML file away — the evaluation style of
//! the paper itself (trace-driven suspend/resume) and of the
//! multi-scenario scheduler studies in PAPERS.md.

use std::fmt;

/// A named scenario: one sweep (or static catalog) with its rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry / file name ("fig4", "trace-replay", …).
    pub name: String,
    /// One-line description shown by `moon-cli list`.
    pub title: String,
    /// Workloads, one per *panel* (a paper figure's (a)/(b) panels).
    /// Named: `sort`, `word count`, `quick`, or `sleep(<base>)` —
    /// the latter triggers a calibration run (§VI-A) at expansion.
    pub workloads: Vec<String>,
    /// Panel label substituted for `{panel}` in table titles; same
    /// length as `workloads` (empty string = single unlabeled panel).
    pub panels: Vec<String>,
    /// Policy bundles (table rows), by catalog id with optional
    /// overrides.
    pub policies: Vec<PolicyRef>,
    /// The swept unavailability axis (table columns).
    pub axis: Axis,
    /// Dedicated-node count (overridable per policy; ignored in quick
    /// mode, which pins the small-cluster shape).
    pub dedicated: u32,
    /// Volatile-node count override for rate/correlated columns
    /// (`None` = the default cluster shape). Applies even in quick
    /// mode — how the fuzzer samples fleet size; a load axis's own
    /// `n_volatile` takes precedence, trace axes size from the trace.
    pub n_volatile: Option<u32>,
    /// Explicit seeds; `None` = the `MOON_SEEDS` env default.
    pub seeds: Option<Vec<u64>>,
    /// Horizon override in seconds; `None` = the 8-hour paper default
    /// (or the trace file's own horizon for trace axes).
    pub horizon_secs: Option<u64>,
    /// Multi-job arrival stream (`None` = the paper's single-job run;
    /// single-job scenarios stay byte-identical with this unset).
    pub jobs: Option<JobStreamSpec>,
    /// Telemetry recording (`None` = off, the zero-overhead default;
    /// tables and reports stay byte-identical with this unset).
    /// `moon-cli run --metrics-out/--trace-out` injects the default
    /// spec when the scenario itself leaves this `None`.
    pub telemetry: Option<TelemetrySpec>,
    /// Output tables, rendered per panel in order.
    pub tables: Vec<TableSpec>,
}

/// Declarative `[telemetry]` knob: per-run gauge sampling cadence and
/// span-ring capacity. Resolved into a [`simkit::TelemetryConfig`] at
/// expansion; every grid point of the scenario records independently.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySpec {
    /// Sim-time seconds between gauge samples.
    pub sample_every_secs: f64,
    /// Maximum retained spans per run (oldest dropped beyond this).
    pub span_capacity: u32,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        let cfg = simkit::TelemetryConfig::default();
        TelemetrySpec {
            sample_every_secs: cfg.sample_every.as_secs_f64(),
            span_capacity: cfg.span_capacity as u32,
        }
    }
}

impl TelemetrySpec {
    /// The engine-level config this spec resolves to.
    pub fn to_config(&self) -> simkit::TelemetryConfig {
        simkit::TelemetryConfig {
            sample_every: simkit::SimDuration::from_secs_f64(self.sample_every_secs),
            span_capacity: self.span_capacity as usize,
        }
    }
}

/// Declarative multi-job stream: how jobs arrive over the horizon and
/// what each runs. Resolved by expansion into a
/// [`workloads::JobStream`] shared by every grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStreamSpec {
    /// The arrival process.
    pub arrivals: ArrivalSpec,
    /// Workload names cycled per job index (empty = every job runs the
    /// panel workload).
    pub workloads: Vec<String>,
    /// Per-job completion deadlines in seconds after submission, cycled
    /// per job index (empty = no deadlines). Consumed by the `edf`
    /// cross-job policy and the jobs table's deadline-miss column.
    pub deadlines_secs: Vec<f64>,
    /// Per-job strict-priority tiers, cycled per job index (empty =
    /// every job at tier 0; higher wins under the `priority` policy).
    pub priorities: Vec<i64>,
    /// Per-job tenant ids, cycled per job index (empty = all tenant 0).
    pub tenants: Vec<u32>,
    /// Tenant weights for the `tenant-fair` policy, indexed by tenant
    /// id (missing = weight 1).
    pub tenant_weights: Vec<u32>,
    /// Per-tenant minimum slot guarantees, indexed by tenant id.
    pub tenant_min_slots: Vec<u32>,
}

impl JobStreamSpec {
    /// A stream with the given arrivals and no per-job metadata.
    pub fn new(arrivals: ArrivalSpec) -> Self {
        JobStreamSpec {
            arrivals,
            workloads: Vec::new(),
            deadlines_secs: Vec::new(),
            priorities: Vec::new(),
            tenants: Vec::new(),
            tenant_weights: Vec::new(),
            tenant_min_slots: Vec::new(),
        }
    }

    /// Does any job of this stream carry scheduling metadata?
    pub fn has_metadata(&self) -> bool {
        !self.deadlines_secs.is_empty()
            || !self.priorities.is_empty()
            || !self.tenants.is_empty()
            || !self.tenant_weights.is_empty()
            || !self.tenant_min_slots.is_empty()
    }
}

/// The arrival-process half of a [`JobStreamSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Deterministic offsets (seconds after the base t = 1 s submit).
    Batch {
        /// One job per entry, at base + offset.
        offsets_secs: Vec<f64>,
    },
    /// Open Poisson stream: `count` jobs at `rate_per_hour`.
    Poisson {
        /// Mean arrivals per hour.
        rate_per_hour: f64,
        /// Total jobs injected.
        count: u32,
    },
    /// Closed think-time stream: each of `clients` submits
    /// `jobs_per_client` jobs back to back with ~`think_secs` pauses.
    Closed {
        /// Concurrent clients.
        clients: u32,
        /// Jobs per client.
        jobs_per_client: u32,
        /// Mean think time between a commit and the next submission.
        think_secs: f64,
    },
}

impl JobStreamSpec {
    /// Total jobs the stream will inject over a full run.
    pub fn total_jobs(&self) -> u32 {
        match &self.arrivals {
            ArrivalSpec::Batch { offsets_secs } => offsets_secs.len() as u32,
            ArrivalSpec::Poisson { count, .. } => *count,
            ArrivalSpec::Closed {
                clients,
                jobs_per_client,
                ..
            } => clients * jobs_per_client,
        }
    }
}

/// A policy catalog reference with optional per-row overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRef {
    /// Catalog id (see [`crate::policy::resolve`]): `moon-hybrid`,
    /// `hadoop-1min`, `vo-v3`, `ha-v1`, `hadoop-vo-v3`, ablation
    /// variants, with an optional `+reliable` suffix.
    pub id: String,
    /// Report label override (default: the catalog label).
    pub label: Option<String>,
    /// Dedicated-node count override for this row (Figure 7's D3/D4/D6).
    pub dedicated: Option<u32>,
}

impl PolicyRef {
    /// A bare catalog reference.
    pub fn new(id: impl Into<String>) -> Self {
        PolicyRef {
            id: id.into(),
            label: None,
            dedicated: None,
        }
    }

    /// With a report-label override.
    pub fn labeled(id: impl Into<String>, label: impl Into<String>) -> Self {
        PolicyRef {
            id: id.into(),
            label: Some(label.into()),
            dedicated: None,
        }
    }
}

/// The unavailability axis: what varies across table columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// Independent synthetic outages (the paper's Poisson-insertion
    /// generator) at each target rate `p`. Columns are labeled `p=…`.
    Rates(Vec<f64>),
    /// Correlated lab-session fleets from
    /// [`availability::generate_fleet`], sweeping one knob.
    Correlated(CorrelatedAxis),
    /// Replay a recorded fleet from an on-disk trace file (one column).
    TraceFile {
        /// Path to a `moon-trace v1` file, resolved against the
        /// current directory and then the repository root.
        path: String,
    },
    /// Saturation sweep: columns vary the `[jobs]` stream's arrival
    /// intensity (`rate_per_hour` for Poisson, client count for
    /// closed) at one fixed unavailability rate — the classic
    /// load-vs-bounded-slowdown curve.
    Load(LoadAxis),
}

/// A load (saturation) sweep: `points` scale the spec's `[jobs]`
/// arrival stream per column while churn stays fixed.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadAxis {
    /// Per-column arrival intensity: jobs/hour for a Poisson stream,
    /// concurrent clients for a closed stream.
    pub points: Vec<f64>,
    /// Fixed unavailability rate shared by every column.
    pub rate: f64,
    /// Volatile-node count override (`None` = the default cluster
    /// shape) — how the fleet-scale scenarios pin 1k/10k-node runs.
    pub n_volatile: Option<u32>,
}

/// Which [`CorrelatedAxis`] knob the axis points sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelatedKnob {
    /// Session arrival intensity (sessions/hour at peak).
    SessionsPerHour,
    /// Fraction of the fleet captured by one session.
    SessionFraction,
}

impl CorrelatedKnob {
    /// Stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            CorrelatedKnob::SessionsPerHour => "sessions_per_hour",
            CorrelatedKnob::SessionFraction => "session_fraction",
        }
    }

    /// Short column-label prefix ("s/h" / "frac").
    pub fn col_prefix(self) -> &'static str {
        match self {
            CorrelatedKnob::SessionsPerHour => "s/h",
            CorrelatedKnob::SessionFraction => "frac",
        }
    }
}

/// A correlated-fleet sweep: `points` are values of `knob`; the other
/// parameters stay fixed.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedAxis {
    /// Values taken by the swept knob (table columns).
    pub points: Vec<f64>,
    /// Which knob `points` drives.
    pub knob: CorrelatedKnob,
    /// Base session intensity (sessions/hour at peak).
    pub sessions_per_hour: f64,
    /// Base fraction of the fleet captured per session.
    pub session_fraction: f64,
    /// Independent per-node background unavailability under the
    /// sessions.
    pub background: f64,
    /// Modulate session intensity with the mid-day diurnal profile.
    pub diurnal: bool,
}

/// One output table: a kind plus a per-panel title template.
/// `{panel}` and `{workload}` in the title are substituted at render
/// time with the panel label and resolved workload name.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// What the table shows.
    pub kind: TableKind,
    /// Title template (`{panel}`, `{workload}` placeholders).
    pub title: String,
}

/// The table kinds the renderer knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Mean job execution time per (policy, axis point) — Figures 4/6/7.
    Time,
    /// Mean duplicated-task count — Figure 5.
    Duplicates,
    /// Per-task execution profile of the first seed — Table II.
    Profile,
    /// Compact per-policy detail row (time, duplicates, kills) — the
    /// ablation report.
    Detail,
    /// The workload catalog (Table I) — rendered from the resolved
    /// workload specs, no simulation runs.
    Catalog,
    /// Per-job SLO aggregates of a multi-job stream (makespan, bounded
    /// slowdown, queueing-delay percentiles) at the first axis column.
    Jobs,
    /// Mean bounded slowdown per (policy, axis column) — the
    /// load-vs-slowdown curve a [`Axis::Load`] sweep produces.
    Saturation,
}

impl TableKind {
    /// Stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            TableKind::Time => "time",
            TableKind::Duplicates => "duplicates",
            TableKind::Profile => "profile",
            TableKind::Detail => "detail",
            TableKind::Catalog => "catalog",
            TableKind::Jobs => "jobs",
            TableKind::Saturation => "saturation",
        }
    }
}

/// Any scenario-layer error (parse, unknown name, expansion failure),
/// with an optional source line when it came from a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number when the error has a file location.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl ScenarioError {
    /// A location-free error.
    pub fn msg(message: impl Into<String>) -> Self {
        ScenarioError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<crate::toml::TomlError> for ScenarioError {
    fn from(e: crate::toml::TomlError) -> Self {
        ScenarioError {
            line: Some(e.line),
            message: e.message,
        }
    }
}

impl From<availability::TraceFileError> for ScenarioError {
    fn from(e: availability::TraceFileError) -> Self {
        ScenarioError {
            line: (e.line > 0).then_some(e.line),
            message: e.message,
        }
    }
}

impl ScenarioSpec {
    /// Number of panels (= workloads).
    pub fn n_panels(&self) -> usize {
        self.workloads.len()
    }

    /// Number of axis points (table columns); 1 for a trace replay.
    pub fn n_cols(&self) -> usize {
        match &self.axis {
            Axis::Rates(r) => r.len(),
            Axis::Correlated(c) => c.points.len(),
            Axis::TraceFile { .. } => 1,
            Axis::Load(l) => l.points.len(),
        }
    }

    /// Simulation runs per seed (panels × policies × columns).
    pub fn runs_per_seed(&self) -> usize {
        self.n_panels() * self.policies.len() * self.n_cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_counting() {
        let spec = ScenarioSpec {
            name: "x".into(),
            title: "t".into(),
            workloads: vec!["sort".into(), "word count".into()],
            panels: vec!["(a)".into(), "(b)".into()],
            policies: vec![PolicyRef::new("moon-hybrid"), PolicyRef::new("moon")],
            axis: Axis::Rates(vec![0.1, 0.3, 0.5]),
            dedicated: 6,
            n_volatile: None,
            seeds: None,
            horizon_secs: None,
            jobs: None,
            telemetry: None,
            tables: vec![],
        };
        assert_eq!(spec.n_panels(), 2);
        assert_eq!(spec.n_cols(), 3);
        assert_eq!(spec.runs_per_seed(), 12);
        let spec = ScenarioSpec {
            axis: Axis::TraceFile {
                path: "x.trace".into(),
            },
            ..spec
        };
        assert_eq!(spec.n_cols(), 1);
    }

    #[test]
    fn error_display_with_and_without_line() {
        let e = ScenarioError::msg("boom");
        assert_eq!(e.to_string(), "boom");
        let e = ScenarioError {
            line: Some(7),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "line 7: boom");
    }
}
