//! Named workload resolution, including the paper's measured-`sleep`
//! calibration (§VI-A).
//!
//! Scenario specs reference workloads by name: the Table I
//! applications (`sort`, `word count`), the doctest-sized `quick`
//! workload, and `sleep(<base>)` — the paper's trick of replaying a
//! workload's *measured* map/reduce times with negligible data to
//! isolate scheduling from data management. Resolving a `sleep(…)`
//! reference runs one calibration experiment on an idle cluster, so
//! resolution is where Figure 4's measurement step lives now.

use crate::knobs::{cluster, maybe_shrink};
use crate::spec::ScenarioError;
use moon::{Experiment, PolicyConfig};
use workloads::WorkloadSpec;

/// Measure sort/word-count task-time means on an idle cluster, for the
/// `sleep` workload (the paper feeds measured means into sleep, §VI-A).
///
/// Moved verbatim from `bench::measured_sleep`: the calibration runs
/// the (quick-shrunk) base workload under MOON-Hybrid at p = 0 with a
/// fixed seed, then builds a sleep workload from the *unshrunk* base
/// shape and the measured means.
pub fn measured_sleep(base: &WorkloadSpec) -> WorkloadSpec {
    let r = Experiment {
        cluster: cluster(0.0, 6),
        policy: PolicyConfig::moon_hybrid(),
        workload: maybe_shrink(base.clone()),
        seed: 7,
    }
    .run();
    let map_mean = simkit::SimDuration::from_secs_f64(r.profile.avg_map_time.max(1.0));
    // Shuffle time is deliberately excluded from the reduce sleep: the
    // sleep workload replays *compute* time only, and the shuffle is
    // re-simulated by the network layer when the sleep job runs —
    // folding the measured shuffle mean into the reduce mean would
    // count the transfer twice.
    let reduce_mean = simkit::SimDuration::from_secs_f64(r.profile.avg_reduce_time.max(1.0));
    workloads::paper::sleep(base, map_mean, reduce_mean)
}

/// Resolve a workload name to its (unshrunk) spec. Quick-mode
/// shrinking is applied later, per grid point, exactly as the fig
/// binaries did — so `sleep(sort)` calibrates against the shrunk base
/// but inherits the full base's shape.
pub fn resolve(name: &str) -> Result<WorkloadSpec, ScenarioError> {
    if let Some(inner) = name
        .strip_prefix("sleep(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let base = resolve(inner)?;
        return Ok(measured_sleep(&base));
    }
    match name {
        "sort" => Ok(workloads::paper::sort()),
        "word count" | "word-count" => Ok(workloads::paper::word_count()),
        "quick" => Ok(moon::quick_workload()),
        other => Err(ScenarioError::msg(format!(
            "unknown workload `{other}` (try: sort, word count, quick, sleep(sort))"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_workloads_resolve() {
        assert_eq!(resolve("sort").unwrap().name, "sort");
        assert_eq!(resolve("word count").unwrap().name, "word count");
        assert_eq!(resolve("word-count").unwrap().name, "word count");
        assert_eq!(resolve("quick").unwrap().name, "quick");
        assert!(resolve("nope").is_err());
        assert!(resolve("sleep(nope)").is_err());
    }

    #[test]
    fn sleep_resolution_calibrates() {
        // Calibrate against the quick workload (cheap): the result is a
        // sleep replay with the base's shape and near-zero data.
        let s = resolve("sleep(quick)").unwrap();
        assert_eq!(s.name, "sleep(quick)");
        let base = resolve("quick").unwrap();
        assert_eq!(s.n_maps, base.n_maps);
        assert_eq!(s.output_bytes, 0);
        assert!(s.map_cpu.mean() >= simkit::SimDuration::from_secs(1));
    }
}
