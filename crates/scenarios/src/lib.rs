//! # scenarios — declarative scenario engine
//!
//! Scenarios are *data*, not code: a [`ScenarioSpec`] names workloads,
//! a policy set, an unavailability axis (synthetic rates, correlated
//! lab-session fleets, or an on-disk trace file), seeds, a horizon and
//! output tables — and the engine expands it into a grid of
//! fully-configured experiments ([`expand()`](expand::expand)) and folds the results
//! back into paper-style tables plus a JSON report ([`render`]).
//!
//! Specs come from two places:
//!
//! - the built-in [`registry`] — the paper reproductions (`fig4` …
//!   `fig7`, `table1`, `table2`, `ablations`) and stress scenarios
//!   (`diurnal-lab`, `blackout`, `trace-replay`, `high-churn`);
//! - TOML files parsed by the self-contained subset parser in
//!   [`toml`] (no registry access; line-numbered errors) via
//!   [`codec`].
//!
//! The `bench` crate layers the parallel sweep harness and the
//! `moon-cli` binary on top; the fig/table binaries are thin wrappers
//! over registry entries.

#![warn(missing_docs)]

pub mod codec;
pub mod expand;
pub mod fuzz;
pub mod invariants;
pub mod knobs;
pub mod policy;
pub mod registry;
pub mod render;
pub mod spec;
pub mod toml;
pub mod workload;

pub use expand::{expand, Plan, Point};
pub use fuzz::{run_fuzz, Fault, FuzzConfig, FuzzReport};
pub use knobs::{cluster, maybe_shrink, quick_mode, seed_list, seeds, PAPER_RATES};
pub use render::{mean_duplicates, mean_slowdown, mean_time, render_tables, report_json};
pub use spec::{
    ArrivalSpec, Axis, CorrelatedAxis, CorrelatedKnob, JobStreamSpec, LoadAxis, PolicyRef,
    ScenarioError, ScenarioSpec, TableKind, TableSpec, TelemetrySpec,
};
