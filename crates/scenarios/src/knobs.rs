//! Environment-driven run knobs shared by every sweep entry point
//! (`moon-cli`, the figure binaries, tests). Moved here from `bench`
//! so scenario expansion and the sweep harness agree on quick-mode
//! shrinking and default seeds; `bench` re-exports them unchanged.

use moon::ClusterConfig;
use workloads::WorkloadSpec;

/// The unavailability rates every paper figure sweeps.
pub const PAPER_RATES: [f64; 3] = [0.1, 0.3, 0.5];

/// Seeds to run per grid point (env `MOON_SEEDS`, default 1). Parsed
/// via [`simkit::env::env_u64`] — the workspace's one set of
/// environment-knob parsing rules.
pub fn seeds() -> Vec<u64> {
    seed_list(simkit::env::env_u64("MOON_SEEDS").unwrap_or(1))
}

/// The canonical seed list for `n` seeds (42, 1042, 2042, …) — the
/// same derivation `MOON_SEEDS` uses, exposed for `--seeds N`.
pub fn seed_list(n: u64) -> Vec<u64> {
    (0..n.max(1)).map(|k| 42 + k * 1000).collect()
}

/// Quick mode (env `MOON_QUICK` truthy per [`simkit::env::env_flag`]):
/// shrink the cluster and workload so a full figure regenerates in
/// seconds (for CI smoke runs).
pub fn quick_mode() -> bool {
    simkit::env::env_flag("MOON_QUICK")
}

/// Scale a workload down for quick mode.
pub fn maybe_shrink(w: WorkloadSpec) -> WorkloadSpec {
    if !quick_mode() {
        return w;
    }
    WorkloadSpec {
        n_maps: (w.n_maps / 8).max(8),
        input_bytes: w.input_bytes / 8,
        output_bytes: w.output_bytes / 8,
        ..w
    }
}

/// Cluster for a given rate (shrunk in quick mode, which also pins the
/// small-cluster dedicated count).
pub fn cluster(rate: f64, n_dedicated: u32) -> ClusterConfig {
    let mut c = if quick_mode() {
        ClusterConfig::small(rate)
    } else {
        ClusterConfig::paper(rate)
    };
    if !quick_mode() {
        c.n_dedicated = n_dedicated;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_list_matches_env_formula() {
        assert_eq!(seed_list(0), vec![42]);
        assert_eq!(seed_list(3), vec![42, 1042, 2042]);
    }
}
