//! The metamorphic oracle: what must stay true when a scenario is
//! perturbed, with the tolerances that make the checks robust on a
//! stochastic simulator.
//!
//! MOON's headline claims are *monotone* (§VI): more nodes or more
//! replication never hurts, more churn never helps, and fair-share
//! scheduling never worsens the queueing tail under symmetric load.
//! Different configurations consume different randomness, so the
//! stochastic checks compare *scores* (mean makespan with DNFs scored
//! at the horizon) under multiplicative + additive slack rather than
//! demanding strict ordering; the conservation and codec checks are
//! exact. See DESIGN.md §8 for why each invariant follows from the
//! model.

use crate::spec::ScenarioSpec;
use moon::{Outcome, RunResult};

/// Inv 1 slack: adding nodes may not raise the score beyond
/// `base * INV1_FACTOR + INV1_SLACK_SECS`.
pub const INV1_FACTOR: f64 = 1.5;
/// Additive half of the inv-1 tolerance (seconds).
pub const INV1_SLACK_SECS: f64 = 120.0;
/// Inv 2 slack: raising unavailability may not *lower* the score below
/// `base * INV2_FACTOR - INV2_SLACK_SECS`.
pub const INV2_FACTOR: f64 = 0.6;
/// Additive half of the inv-2 tolerance (seconds).
pub const INV2_SLACK_SECS: f64 = 120.0;
/// Inv 3 guard: completion counts are only compared when the base run
/// finished within this fraction of the horizon (a run already
/// brushing the horizon can legitimately tip over under the extra
/// replication I/O).
pub const INV3_MARGIN: f64 = 0.7;
/// Inv 4 slack: fair-share pooled p95 queueing delay may not exceed
/// `fifo * INV4_FACTOR + INV4_SLACK_SECS`. Genuine fair share beats
/// FIFO's tail by a wide margin under symmetric congestion, so the
/// slack can stay tight enough to catch an inverted ranking (which
/// lands near or beyond 2× FIFO).
pub const INV4_FACTOR: f64 = 1.2;
/// Additive half of the inv-4 tolerance (seconds).
pub const INV4_SLACK_SECS: f64 = 30.0;

/// Inv 7 slack: raising a job's own priority may not raise that job's
/// pooled p95 queueing delay beyond `base * INV7_FACTOR +
/// INV7_SLACK_SECS` (the schedule around it changes, so the check
/// tolerates noise like inv 4).
pub const INV7_FACTOR: f64 = 1.2;
/// Additive half of the inv-7 tolerance (seconds).
pub const INV7_SLACK_SECS: f64 = 30.0;

/// The score a stochastic comparison uses: mean makespan in seconds
/// over the point's seeds, scoring each DNF at the full horizon (an
/// upper bound that keeps the score monotone-safe — a run that gets
/// *worse* can only move toward the horizon, never past it).
pub fn score(results: &[RunResult], horizon_secs: f64) -> f64 {
    if results.is_empty() {
        return horizon_secs;
    }
    let total: f64 = results
        .iter()
        .map(|r| match r.job_time {
            Some(d) => d.as_secs_f64().min(horizon_secs),
            None => horizon_secs,
        })
        .sum();
    total / results.len() as f64
}

/// Committed-work count across a point's seeds: per-job commits for a
/// stream run, else 1 per completed run — the "completion rate"
/// numerator invariant 3 compares.
pub fn completed_count(results: &[RunResult]) -> usize {
    results
        .iter()
        .map(|r| match &r.jobs {
            Some(rows) => rows.iter().filter(|j| j.finished.is_some()).count(),
            None => usize::from(r.outcome == Outcome::Completed),
        })
        .sum()
}

/// Pooled p95 queueing delay (seconds) across every job row of every
/// seed, by nearest rank. `None` when no job ever launched.
pub fn pooled_p95_queue_delay(results: &[RunResult]) -> Option<f64> {
    pooled_p95_queue_delay_of(results, |_| true)
}

/// [`pooled_p95_queue_delay`] restricted to the job rows `keep`
/// selects — how inv 7 isolates the boosted jobs' own tail.
pub fn pooled_p95_queue_delay_of(
    results: &[RunResult],
    keep: impl Fn(&moon::JobSlo) -> bool,
) -> Option<f64> {
    let mut delays: Vec<f64> = results
        .iter()
        .filter_map(|r| r.jobs.as_ref())
        .flatten()
        .filter(|j| keep(j))
        .filter_map(|j| j.queue_delay_secs())
        .collect();
    if delays.is_empty() {
        return None;
    }
    delays.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
    let rank = ((0.95 * delays.len() as f64).ceil() as usize).clamp(1, delays.len());
    Some(delays[rank - 1])
}

/// Invariant 1 — adding nodes never raises mean makespan (beyond
/// noise slack). Returns the violation description, if any.
pub fn check_add_nodes(base: f64, grown: f64) -> Option<String> {
    (grown > base * INV1_FACTOR + INV1_SLACK_SECS)
        .then(|| format!("adding nodes raised the score from {base:.1}s to {grown:.1}s"))
}

/// Invariant 2 — raising unavailability never lowers mean makespan
/// (beyond noise slack).
pub fn check_raise_unavailability(base: f64, churned: f64) -> Option<String> {
    (churned < base * INV2_FACTOR - INV2_SLACK_SECS).then(|| {
        format!("raising unavailability lowered the score from {base:.1}s to {churned:.1}s")
    })
}

/// Invariant 3 — raising intermediate replication never lowers the
/// committed-work count, provided the base run had comfortable horizon
/// margin (`base_score < INV3_MARGIN × horizon`).
pub fn check_raise_replication(
    base_completed: usize,
    more_completed: usize,
    base_score: f64,
    horizon_secs: f64,
) -> Option<String> {
    if base_score >= INV3_MARGIN * horizon_secs {
        return None; // too close to the horizon to compare fairly
    }
    (more_completed < base_completed).then(|| {
        format!(
            "raising replication dropped committed work from {base_completed} to {more_completed}"
        )
    })
}

/// Invariant 4 — under a symmetric closed stream, fair-share pooled
/// p95 queueing delay never exceeds FIFO's (beyond slack). This is the
/// check the `+fair-inverted` fault-injection policy must trip.
pub fn check_fair_tail(fifo_p95: f64, fair_p95: f64) -> Option<String> {
    (fair_p95 > fifo_p95 * INV4_FACTOR + INV4_SLACK_SECS).then(|| {
        format!(
            "fair-share p95 queue delay {fair_p95:.1}s exceeds FIFO's {fifo_p95:.1}s \
             beyond tolerance"
        )
    })
}

/// Invariant 7 — under strict-priority scheduling, raising a set of
/// jobs' own priority never raises *their* pooled p95 queueing delay
/// (beyond slack).
pub fn check_priority_boost(base_p95: f64, boosted_p95: f64) -> Option<String> {
    (boosted_p95 > base_p95 * INV7_FACTOR + INV7_SLACK_SECS).then(|| {
        format!(
            "raising priority raised the boosted jobs' own p95 queue delay \
             from {base_p95:.1}s to {boosted_p95:.1}s"
        )
    })
}

/// Invariant 8 — adding the *same* constant slack to every job's
/// relative deadline preserves every EDF comparison (a uniform shift
/// of all absolute deadlines), so the schedule must be bit-identical:
/// same per-job submit/launch/finish times and counters, deadline
/// fields aside. Exact, like the codec checks.
pub fn check_slack_deadlines(base: &[RunResult], slacked: &[RunResult]) -> Option<String> {
    if base.len() != slacked.len() {
        return Some(format!(
            "slacked run count {} differs from base {}",
            slacked.len(),
            base.len()
        ));
    }
    for (b, s) in base.iter().zip(slacked) {
        if b.job_time != s.job_time {
            return Some(format!(
                "seed {}: slacking deadlines moved stream makespan from {:?} to {:?}",
                b.seed, b.job_time, s.job_time
            ));
        }
        let (rb, rs) = (
            b.jobs.as_deref().unwrap_or(&[]),
            s.jobs.as_deref().unwrap_or(&[]),
        );
        if rb.len() != rs.len() {
            return Some(format!(
                "seed {}: slacking deadlines changed the job count from {} to {}",
                b.seed,
                rb.len(),
                rs.len()
            ));
        }
        for (jb, js) in rb.iter().zip(rs) {
            let same = jb.job == js.job
                && jb.submitted == js.submitted
                && jb.first_launch == js.first_launch
                && jb.finished == js.finished
                && jb.metrics == js.metrics;
            if !same {
                return Some(format!(
                    "seed {}: job {} scheduled differently under slacked deadlines \
                     (base launch {:?} finish {:?} vs {:?} {:?})",
                    b.seed, jb.job, jb.first_launch, jb.finished, js.first_launch, js.finished
                ));
            }
        }
    }
    None
}

/// Invariant 9 — preemption is strictly a cross-job mechanism: in a
/// run whose jobs never coexist (every `[submitted, finished]` window
/// pairwise disjoint, no DNFs), the preemption count must be zero.
/// Runs with overlapping or unfinished jobs are skipped — the guard
/// keeps the check exact rather than probabilistic.
pub fn check_preempt_idle(results: &[RunResult]) -> Option<String> {
    for r in results {
        let Some(rows) = &r.jobs else { continue };
        let mut windows: Vec<(simkit::SimTime, simkit::SimTime)> = Vec::new();
        let mut all_done = true;
        for j in rows {
            match j.finished {
                Some(f) => windows.push((j.submitted, f)),
                None => all_done = false,
            }
        }
        windows.sort();
        let disjoint = windows.windows(2).all(|w| w[0].1 <= w[1].0);
        if !(all_done && disjoint) {
            continue;
        }
        let preempted: u64 = rows.iter().map(|j| u64::from(j.metrics.preempted)).sum();
        if preempted > 0 {
            return Some(format!(
                "seed {}: {} preemption(s) in a run whose jobs never coexisted",
                r.seed, preempted
            ));
        }
    }
    None
}

/// Invariant 5 — netsim/World conservation: a run may end at the
/// horizon, but never in an event-limit livelock, and the end-of-run
/// audit ([`moon::World::debug_final_audit`]) must be empty. One line
/// per violated run.
pub fn check_conservation(results: &[RunResult]) -> Vec<String> {
    let mut issues = Vec::new();
    for r in results {
        if r.outcome == Outcome::EventLimit {
            issues.push(format!(
                "seed {} ({}): event-limit livelock after {} events",
                r.seed, r.label, r.events
            ));
        }
        for a in &r.audit {
            issues.push(format!("seed {} ({}): audit: {a}", r.seed, r.label));
        }
    }
    issues
}

/// Invariant 6 — every generated spec must round-trip through the
/// TOML codec bit-exactly (`from_str(to_string(s)) == s`, and the
/// re-serialization byte-identical).
pub fn check_roundtrip(spec: &ScenarioSpec) -> Option<String> {
    let text = crate::codec::to_string(spec);
    let back = match crate::codec::from_str(&text) {
        Ok(b) => b,
        Err(e) => return Some(format!("generated spec fails to re-parse: {e}")),
    };
    if &back != spec {
        return Some("generated spec round-trips to a different value".into());
    }
    let again = crate::codec::to_string(&back);
    (again != text).then(|| "re-serialization is not byte-identical".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapred::JobMetrics;
    use moon::{ExecutionProfile, JobSlo};
    use simkit::{SimDuration, SimTime};

    fn run(job_secs: Option<f64>, outcome: Outcome) -> RunResult {
        RunResult {
            label: "x".into(),
            workload: "quick".into(),
            unavailability: 0.3,
            job_time: job_secs.map(SimDuration::from_secs_f64),
            outcome,
            job: JobMetrics::default(),
            profile: ExecutionProfile::default(),
            fetch_failures: 0,
            events: 10,
            seed: 42,
            jobs: None,
            audit: Vec::new(),
            telemetry: None,
        }
    }

    fn slo(submitted: u64, launch: Option<u64>, finished: Option<u64>) -> JobSlo {
        JobSlo {
            job: 0,
            workload: "quick".into(),
            submitted: SimTime::from_secs(submitted),
            first_launch: launch.map(SimTime::from_secs),
            finished: finished.map(SimTime::from_secs),
            deadline: None,
            priority: 0,
            tenant: 0,
            metrics: JobMetrics::default(),
        }
    }

    #[test]
    fn score_mixes_makespans_and_horizon_dnfs() {
        let rs = vec![
            run(Some(100.0), Outcome::Completed),
            run(None, Outcome::Horizon),
        ];
        assert!((score(&rs, 3600.0) - 1850.0).abs() < 1e-9);
        assert_eq!(score(&[], 3600.0), 3600.0);
    }

    #[test]
    fn completed_count_prefers_job_rows() {
        let mut r = run(Some(10.0), Outcome::Completed);
        r.jobs = Some(vec![
            slo(1, Some(2), Some(50)),
            slo(1, Some(3), None),
            slo(1, None, None),
        ]);
        assert_eq!(completed_count(&[r]), 1);
        let rs = vec![
            run(Some(10.0), Outcome::Completed),
            run(None, Outcome::Horizon),
        ];
        assert_eq!(completed_count(&rs), 1);
    }

    #[test]
    fn p95_is_pooled_nearest_rank() {
        let mut r = run(Some(10.0), Outcome::Completed);
        r.jobs = Some((0..20).map(|i| slo(0, Some(i + 1), None)).collect());
        let p95 = pooled_p95_queue_delay(std::slice::from_ref(&r)).unwrap();
        assert_eq!(p95, 19.0);
        r.jobs = Some(vec![slo(0, None, None)]);
        assert_eq!(pooled_p95_queue_delay(&[r]), None);
    }

    #[test]
    fn monotone_checks_respect_tolerance() {
        assert!(check_add_nodes(100.0, 200.0).is_none());
        assert!(check_add_nodes(100.0, 400.0).is_some());
        assert!(check_raise_unavailability(1000.0, 900.0).is_none());
        assert!(check_raise_unavailability(1000.0, 100.0).is_some());
        assert!(check_fair_tail(100.0, 140.0).is_none());
        assert!(check_fair_tail(100.0, 160.0).is_some());
        // Replication check is guarded by horizon margin.
        assert!(check_raise_replication(3, 2, 3500.0, 3600.0).is_none());
        assert!(check_raise_replication(3, 2, 100.0, 3600.0).is_some());
        assert!(check_raise_replication(3, 3, 100.0, 3600.0).is_none());
    }

    #[test]
    fn priority_boost_check_respects_tolerance() {
        assert!(check_priority_boost(100.0, 140.0).is_none());
        assert!(check_priority_boost(100.0, 160.0).is_some());
        assert!(check_priority_boost(0.0, 20.0).is_none());
    }

    #[test]
    fn p95_filter_isolates_selected_rows() {
        let mut r = run(Some(10.0), Outcome::Completed);
        let mut rows: Vec<JobSlo> = (0..4).map(|i| slo(0, Some((i + 1) * 10), None)).collect();
        rows[0].priority = 5;
        rows[1].priority = 5;
        r.jobs = Some(rows);
        let boosted =
            pooled_p95_queue_delay_of(std::slice::from_ref(&r), |j| j.priority > 0).unwrap();
        assert_eq!(boosted, 20.0);
        assert_eq!(pooled_p95_queue_delay(&[r]), Some(40.0));
    }

    #[test]
    fn slack_deadline_check_is_exact() {
        let mut a = run(Some(10.0), Outcome::Completed);
        a.jobs = Some(vec![slo(0, Some(5), Some(50)), slo(10, Some(20), Some(80))]);
        let b = a.clone();
        assert_eq!(
            check_slack_deadlines(std::slice::from_ref(&a), std::slice::from_ref(&b)),
            None
        );
        // Deadline fields themselves may differ — that's the slack.
        let mut c = b.clone();
        c.jobs.as_mut().unwrap()[0].deadline = Some(SimTime::from_secs(999));
        assert_eq!(check_slack_deadlines(&[a.clone()], &[c]), None);
        // Any schedule drift is a violation.
        let mut d = b.clone();
        d.jobs.as_mut().unwrap()[1].finished = Some(SimTime::from_secs(81));
        assert!(check_slack_deadlines(&[a.clone()], &[d]).is_some());
        let mut e = b;
        e.jobs.as_mut().unwrap()[0].metrics.preempted = 1;
        assert!(check_slack_deadlines(&[a], &[e]).is_some());
    }

    #[test]
    fn preempt_idle_check_requires_disjoint_finished_windows() {
        // Disjoint windows, preemption recorded: violation.
        let mut r = run(Some(10.0), Outcome::Completed);
        let mut rows = vec![slo(0, Some(1), Some(50)), slo(60, Some(61), Some(90))];
        rows[1].metrics.preempted = 2;
        r.jobs = Some(rows.clone());
        assert!(check_preempt_idle(std::slice::from_ref(&r)).is_some());
        // Same counters but overlapping windows: skipped, no violation.
        rows[1].submitted = SimTime::from_secs(40);
        r.jobs = Some(rows.clone());
        assert_eq!(check_preempt_idle(std::slice::from_ref(&r)), None);
        // A DNF job also disarms the check.
        rows[1].submitted = SimTime::from_secs(60);
        rows[1].finished = None;
        r.jobs = Some(rows);
        assert_eq!(check_preempt_idle(std::slice::from_ref(&r)), None);
        // Disjoint and preemption-free: clean.
        let mut ok = run(Some(10.0), Outcome::Completed);
        ok.jobs = Some(vec![slo(0, Some(1), Some(50)), slo(60, Some(61), Some(90))]);
        assert_eq!(check_preempt_idle(&[ok]), None);
    }

    #[test]
    fn conservation_flags_livelocks_and_audits() {
        let ok = run(Some(10.0), Outcome::Completed);
        assert!(check_conservation(std::slice::from_ref(&ok)).is_empty());
        let ll = run(None, Outcome::EventLimit);
        let issues = check_conservation(&[ok, ll]);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].contains("livelock"), "{issues:?}");
        let mut bad = run(Some(10.0), Outcome::Completed);
        bad.audit.push("counter drifted".into());
        let issues = check_conservation(&[bad]);
        assert!(issues[0].contains("counter drifted"), "{issues:?}");
    }

    #[test]
    fn roundtrip_check_accepts_builtins() {
        for spec in crate::registry::all() {
            assert_eq!(check_roundtrip(&spec), None, "{}", spec.name);
        }
    }
}
