//! The named policy catalog: every policy bundle the scenarios sweep,
//! addressable by a stable string id so specs (and `moon-cli` users)
//! never construct `PolicyConfig`s in code.
//!
//! | id pattern | bundle |
//! |---|---|
//! | `moon-hybrid` | MOON with hybrid-aware scheduling (the paper's best) |
//! | `moon` | MOON without hybrid awareness |
//! | `hadoop-<n>min` | stock Hadoop, `<n>`-minute tracker expiry, 6-way I/O replication |
//! | `hadoop-vo-v<k>` | augmented Hadoop-VO (1-min expiry, k-way volatile intermediate) |
//! | `vo-v<k>` | volatile-only intermediate `{0,k}` on the MOON stack (Figure 6) |
//! | `ha-v<k>` | hybrid-aware intermediate `{1,k}` (Figure 6) |
//! | `no-hibernate`, `no-adaptive-v`, `no-homestretch`, `spec-cap-<pct>`, `hadoop-fetch-rule`, `homestretch-r<r>` | single-mechanism ablations of MOON-Hybrid HA-{1,1} |
//!
//! Any id may carry a `+reliable` suffix, applying the Figure 4
//! isolation setup (intermediate data as reliable `{1,1}` files),
//! and/or a `+fair` suffix, switching the cross-job layer from FIFO
//! to max-min fair share (the label gains the suffix so a scenario
//! can sweep both variants side by side; single-job runs are
//! unaffected).
//!
//! The deadline-/priority-/tenant-aware cross-job rankings ride the
//! same mechanism: `+edf` (earliest deadline first), `+prio` (strict
//! priority), and `+tenant-fair` (weighted max-min over tenants with
//! minimum shares) each switch the ranking *and* enable
//! kill-and-requeue preemption, while a bare `+preempt` enables
//! preemption on top of any base ranking.

use crate::spec::ScenarioError;
use mapred::{FetchFailurePolicy, MoonPolicy, SchedulerPolicy};
use moon::PolicyConfig;
use simkit::SimDuration;

/// Default tracker expiry for the `hadoop-vo-v<k>` family (the paper's
/// augmented baseline runs with the 1-minute expiry).
const HADOOP_VO_EXPIRY_MINS: u64 = 1;
/// Uniform input/output replication for the Hadoop baselines.
const HADOOP_REPLICAS: u32 = 6;

fn unknown(id: &str) -> ScenarioError {
    ScenarioError::msg(format!(
        "unknown policy id `{id}` (try: moon-hybrid, moon, hadoop-1min, \
         hadoop-vo-v3, vo-v3, ha-v1, no-hibernate, no-adaptive-v, \
         no-homestretch, spec-cap-10, hadoop-fetch-rule, homestretch-r1; \
         any id may end with +reliable)"
    ))
}

fn parse_suffix_u32(id: &str, prefix: &str) -> Option<u32> {
    id.strip_prefix(prefix)?.parse().ok()
}

/// The MOON-Hybrid HA-{1,1} bundle every ablation perturbs.
fn ablation_base() -> PolicyConfig {
    PolicyConfig::ha_intermediate(1)
}

fn resolve_base(id: &str) -> Result<PolicyConfig, ScenarioError> {
    // Fixed ids first.
    match id {
        "moon-hybrid" => return Ok(PolicyConfig::moon_hybrid()),
        "moon" => return Ok(PolicyConfig::moon()),
        "no-hibernate" => {
            let mut v = ablation_base();
            v.namenode.hibernate_interval = v.namenode.expiry_interval;
            v.label = "no-hibernate".into();
            return Ok(v);
        }
        "no-adaptive-v" => {
            let mut v = ablation_base();
            v.namenode.adaptive_replication = false;
            v.label = "no-adaptive-v'".into();
            return Ok(v);
        }
        "no-homestretch" => {
            let mut v = ablation_base();
            v.scheduler = SchedulerPolicy::Moon(MoonPolicy {
                homestretch_h_percent: 0.0,
                ..MoonPolicy::default()
            });
            v.label = "no-homestretch".into();
            return Ok(v);
        }
        "hadoop-fetch-rule" => {
            let mut v = ablation_base();
            v.fetch = FetchFailurePolicy::HadoopMajority;
            v.label = "hadoop-fetch-rule".into();
            return Ok(v);
        }
        _ => {}
    }
    // Parameterized families.
    if let Some(rest) = id.strip_prefix("hadoop-vo-v") {
        let k: u32 = rest.parse().map_err(|_| unknown(id))?;
        return Ok(PolicyConfig::hadoop_vo(
            SimDuration::from_mins(HADOOP_VO_EXPIRY_MINS),
            HADOOP_REPLICAS,
            k,
        ));
    }
    if let Some(rest) = id.strip_prefix("hadoop-") {
        if let Some(mins) = rest.strip_suffix("min") {
            let m: u64 = mins.parse().map_err(|_| unknown(id))?;
            return Ok(PolicyConfig::hadoop(
                SimDuration::from_mins(m),
                HADOOP_REPLICAS,
            ));
        }
    }
    if let Some(k) = parse_suffix_u32(id, "vo-v") {
        return Ok(PolicyConfig::vo_intermediate(k));
    }
    if let Some(k) = parse_suffix_u32(id, "ha-v") {
        return Ok(PolicyConfig::ha_intermediate(k));
    }
    if let Some(pct) = parse_suffix_u32(id, "spec-cap-") {
        let mut v = ablation_base();
        v.scheduler = SchedulerPolicy::Moon(MoonPolicy {
            speculative_slot_fraction: pct as f64 / 100.0,
            ..MoonPolicy::default()
        });
        v.label = format!("spec-cap-{pct}%");
        return Ok(v);
    }
    if let Some(r) = parse_suffix_u32(id, "homestretch-r") {
        let mut v = ablation_base();
        v.scheduler = SchedulerPolicy::Moon(MoonPolicy {
            homestretch_r: r,
            ..MoonPolicy::default()
        });
        v.label = format!("homestretch-R{r}");
        return Ok(v);
    }
    Err(unknown(id))
}

/// Resolve a catalog id (with optional `+reliable` / `+fair` /
/// `+fair-inverted` / `+edf` / `+prio` / `+tenant-fair` / `+preempt`
/// suffixes, in any order) to its policy bundle.
///
/// `+fair-inverted` is the fault-injection variant of `+fair`
/// ([`mapred::CrossJobPolicy::FairShareInverted`]): it exists so the
/// fuzzer can prove its tail-latency oracle catches a broken
/// cross-job ranking, and should never appear in a real scenario.
///
/// The deadline-/priority-/tenant-aware suffixes (`+edf`, `+prio`,
/// `+tenant-fair`) switch the cross-job ranking *and* enable
/// kill-and-requeue preemption — those policies only honor their
/// ordering under contention if a more-deserving job can reclaim a
/// busy slot. `+preempt` enables preemption alone, composing with any
/// base (e.g. `moon-hybrid+fair+preempt` is preemptive fair share).
pub fn resolve(id: &str) -> Result<PolicyConfig, ScenarioError> {
    let mut base_id = id;
    let (mut reliable, mut fair, mut fair_inverted) = (false, false, false);
    let (mut edf, mut prio, mut tenant_fair, mut preempt) = (false, false, false, false);
    loop {
        if let Some(b) = base_id.strip_suffix("+reliable") {
            base_id = b;
            reliable = true;
        } else if let Some(b) = base_id.strip_suffix("+fair-inverted") {
            base_id = b;
            fair_inverted = true;
        } else if let Some(b) = base_id.strip_suffix("+tenant-fair") {
            base_id = b;
            tenant_fair = true;
        } else if let Some(b) = base_id.strip_suffix("+fair") {
            base_id = b;
            fair = true;
        } else if let Some(b) = base_id.strip_suffix("+edf") {
            base_id = b;
            edf = true;
        } else if let Some(b) = base_id.strip_suffix("+prio") {
            base_id = b;
            prio = true;
        } else if let Some(b) = base_id.strip_suffix("+preempt") {
            base_id = b;
            preempt = true;
        } else {
            break;
        }
    }
    let mut p = resolve_base(base_id)?;
    if reliable {
        p = p.with_reliable_intermediate();
    }
    if fair {
        p = p.with_fair_share();
        p.label.push_str("+fair");
    }
    if fair_inverted {
        p.cross_job = mapred::CrossJobPolicy::FairShareInverted;
        p.label.push_str("+fair-inverted");
    }
    if edf {
        p = p
            .with_cross_job(mapred::CrossJobPolicy::Edf)
            .with_preemption();
        p.label.push_str("+edf");
    }
    if prio {
        p = p
            .with_cross_job(mapred::CrossJobPolicy::StrictPriority)
            .with_preemption();
        p.label.push_str("+prio");
    }
    if tenant_fair {
        p = p
            .with_cross_job(mapred::CrossJobPolicy::TenantFair)
            .with_preemption();
        p.label.push_str("+tenant-fair");
    }
    if preempt {
        p = p.with_preemption();
        p.label.push_str("+preempt");
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_with_expected_labels() {
        assert_eq!(resolve("moon-hybrid").unwrap().label, "MOON-Hybrid");
        assert_eq!(resolve("moon").unwrap().label, "MOON");
        assert_eq!(resolve("hadoop-10min").unwrap().label, "Hadoop10Min");
        assert_eq!(resolve("hadoop-1min").unwrap().label, "Hadoop1Min");
        assert_eq!(resolve("hadoop-vo-v3").unwrap().label, "Hadoop-VO-V3");
        assert_eq!(resolve("vo-v5").unwrap().label, "VO-V5");
        assert_eq!(resolve("ha-v1").unwrap().label, "HA-V1");
    }

    #[test]
    fn fair_suffix_switches_cross_job_layer() {
        let p = resolve("moon-hybrid+fair").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::FairShare);
        assert_eq!(p.label, "MOON-Hybrid+fair");
        // Suffixes compose in either order.
        for id in ["hadoop-1min+fair+reliable", "hadoop-1min+reliable+fair"] {
            let p = resolve(id).unwrap();
            assert_eq!(p.cross_job, mapred::CrossJobPolicy::FairShare);
            assert_eq!(p.intermediate_kind, dfs::FileKind::Reliable);
            assert_eq!(p.label, "Hadoop1Min+fair");
        }
        // Plain ids stay FIFO.
        let p = resolve("moon-hybrid").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::Fifo);
    }

    #[test]
    fn fair_inverted_suffix_is_the_fault_injection_variant() {
        let p = resolve("moon-hybrid+fair-inverted").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::FairShareInverted);
        assert_eq!(p.label, "MOON-Hybrid+fair-inverted");
        let p = resolve("hadoop-1min+fair-inverted+reliable").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::FairShareInverted);
        assert_eq!(p.intermediate_kind, dfs::FileKind::Reliable);
    }

    #[test]
    fn scheduling_suffixes_switch_ranking_and_enable_preemption() {
        let p = resolve("moon-hybrid+edf").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::Edf);
        assert!(p.preempt);
        assert_eq!(p.label, "MOON-Hybrid+edf");

        let p = resolve("moon-hybrid+prio").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::StrictPriority);
        assert!(p.preempt);
        assert_eq!(p.label, "MOON-Hybrid+prio");

        let p = resolve("hadoop-1min+tenant-fair").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::TenantFair);
        assert!(p.preempt);
        assert_eq!(p.label, "Hadoop1Min+tenant-fair");

        // `+tenant-fair` must not be eaten by the `+fair` strip.
        assert_eq!(
            resolve("moon-hybrid+tenant-fair").unwrap().cross_job,
            mapred::CrossJobPolicy::TenantFair
        );

        // Bare `+preempt` composes with any ranking.
        let p = resolve("moon-hybrid+fair+preempt").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::FairShare);
        assert!(p.preempt);
        assert_eq!(p.label, "MOON-Hybrid+fair+preempt");
        let p = resolve("moon-hybrid+preempt").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::Fifo);
        assert!(p.preempt);

        // Plain ids stay non-preemptive.
        assert!(!resolve("moon-hybrid").unwrap().preempt);
        assert!(!resolve("moon-hybrid+fair").unwrap().preempt);

        // Suffixes compose with +reliable in either order.
        let p = resolve("moon-hybrid+reliable+edf").unwrap();
        assert_eq!(p.cross_job, mapred::CrossJobPolicy::Edf);
        assert_eq!(p.intermediate_kind, dfs::FileKind::Reliable);
    }

    #[test]
    fn reliable_suffix_applies_isolation_setup() {
        let p = resolve("moon-hybrid+reliable").unwrap();
        assert_eq!(p.intermediate_kind, dfs::FileKind::Reliable);
        assert_eq!(p.label, "MOON-Hybrid");
        let h = resolve("hadoop-5min+reliable").unwrap();
        assert_eq!(h.intermediate_kind, dfs::FileKind::Reliable);
        assert_eq!(h.label, "Hadoop5Min");
    }

    #[test]
    fn ablation_variants_match_their_hand_built_originals() {
        let v = resolve("no-hibernate").unwrap();
        assert_eq!(v.namenode.hibernate_interval, v.namenode.expiry_interval);

        let v = resolve("no-adaptive-v").unwrap();
        assert!(!v.namenode.adaptive_replication);
        assert_eq!(v.label, "no-adaptive-v'");

        let v = resolve("no-homestretch").unwrap();
        match &v.scheduler {
            SchedulerPolicy::Moon(m) => assert_eq!(m.homestretch_h_percent, 0.0),
            other => panic!("{other:?}"),
        }

        let v = resolve("spec-cap-40").unwrap();
        assert_eq!(v.label, "spec-cap-40%");
        match &v.scheduler {
            SchedulerPolicy::Moon(m) => {
                assert!((m.speculative_slot_fraction - 0.4).abs() < 1e-12)
            }
            other => panic!("{other:?}"),
        }

        let v = resolve("hadoop-fetch-rule").unwrap();
        assert_eq!(v.fetch, mapred::FetchFailurePolicy::HadoopMajority);

        let v = resolve("homestretch-r3").unwrap();
        assert_eq!(v.label, "homestretch-R3");
        match &v.scheduler {
            SchedulerPolicy::Moon(m) => assert_eq!(m.homestretch_r, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_ids_error_helpfully() {
        let e = resolve("mystery").unwrap_err();
        assert!(e.message.contains("unknown policy id `mystery`"), "{e}");
        assert!(resolve("hadoop-xmin").is_err());
        assert!(resolve("vo-v").is_err());
    }
}
