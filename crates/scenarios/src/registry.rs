//! The built-in scenario registry: every paper reproduction the fig/
//! table binaries used to hard-code, plus stress scenarios exercising
//! knobs the paper's evaluation never swept. `moon-cli list` prints
//! this catalog; each entry is an ordinary [`ScenarioSpec`] that could
//! equally have been loaded from a TOML file (`codec::to_string` of a
//! registry entry is a valid scenario file).

use crate::knobs::PAPER_RATES;
use crate::spec::{
    ArrivalSpec, Axis, CorrelatedAxis, CorrelatedKnob, JobStreamSpec, LoadAxis, PolicyRef,
    ScenarioSpec, TableKind, TableSpec,
};

fn table(kind: TableKind, title: &str) -> TableSpec {
    TableSpec {
        kind,
        title: title.into(),
    }
}

fn refs(ids: &[&str]) -> Vec<PolicyRef> {
    ids.iter().map(|id| PolicyRef::new(*id)).collect()
}

fn paper_panels() -> (Vec<String>, Vec<String>) {
    (
        vec!["sort".into(), "word count".into()],
        vec!["(a) sort".into(), "(b) word count".into()],
    )
}

fn fig45_base(name: &str, title: &str, tables: Vec<TableSpec>) -> ScenarioSpec {
    ScenarioSpec {
        name: name.into(),
        title: title.into(),
        workloads: vec!["sleep(sort)".into(), "sleep(word count)".into()],
        panels: vec!["(a) sort".into(), "(b) word count".into()],
        policies: refs(&[
            "hadoop-10min+reliable",
            "hadoop-5min+reliable",
            "hadoop-1min+reliable",
            "moon+reliable",
            "moon-hybrid+reliable",
        ]),
        axis: Axis::Rates(PAPER_RATES.to_vec()),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables,
    }
}

fn fig4() -> ScenarioSpec {
    fig45_base(
        "fig4",
        "Figure 4 — execution time under scheduling policies (sleep replay; same sweep as fig5)",
        vec![
            table(
                TableKind::Time,
                "Figure 4{panel}: execution time, {workload}",
            ),
            table(
                TableKind::Duplicates,
                "Figure 5{panel}: duplicated tasks, {workload}",
            ),
        ],
    )
}

fn fig5() -> ScenarioSpec {
    fig45_base(
        "fig5",
        "Figure 5 — duplicated tasks under scheduling policies (same sweep as fig4)",
        vec![table(
            TableKind::Duplicates,
            "Figure 5{panel}: duplicated tasks, {workload}",
        )],
    )
}

fn fig6() -> ScenarioSpec {
    let (workloads, panels) = paper_panels();
    ScenarioSpec {
        name: "fig6".into(),
        title: "Figure 6 — intermediate-data replication policies (VO-Vk vs HA-Vk)".into(),
        workloads,
        panels,
        policies: refs(&[
            "vo-v1", "vo-v2", "vo-v3", "vo-v4", "vo-v5", "ha-v1", "ha-v2", "ha-v3",
        ]),
        axis: Axis::Rates(PAPER_RATES.to_vec()),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables: vec![table(
            TableKind::Time,
            "Figure 6{panel}: execution time by intermediate replication policy",
        )],
    }
}

fn fig7() -> ScenarioSpec {
    let (workloads, panels) = paper_panels();
    let mut policies = vec![PolicyRef {
        id: "hadoop-vo-v3".into(),
        label: Some("Hadoop-VO".into()),
        dedicated: Some(6),
    }];
    for d in [3u32, 4, 6] {
        policies.push(PolicyRef {
            id: "ha-v1".into(),
            label: Some(format!("MOON-HybridD{d}")),
            dedicated: Some(d),
        });
    }
    ScenarioSpec {
        name: "fig7".into(),
        title: "Figure 7 — MOON vs augmented Hadoop-VO across dedicated-node counts".into(),
        workloads,
        panels,
        policies,
        axis: Axis::Rates(PAPER_RATES.to_vec()),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables: vec![table(TableKind::Time, "Figure 7{panel}: MOON vs Hadoop-VO")],
    }
}

fn table1() -> ScenarioSpec {
    let (workloads, _) = paper_panels();
    ScenarioSpec {
        name: "table1".into(),
        title: "Table I — application configurations (static, no simulation)".into(),
        panels: vec![String::new(); workloads.len()],
        workloads,
        policies: Vec::new(),
        axis: Axis::Rates(Vec::new()),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables: vec![table(
            TableKind::Catalog,
            "# Table I — application configurations",
        )],
    }
}

fn table2() -> ScenarioSpec {
    let (workloads, _) = paper_panels();
    ScenarioSpec {
        name: "table2".into(),
        title: "Table II — execution profile of intermediate replication policies at p=0.5".into(),
        panels: vec!["sort".into(), "word count".into()],
        workloads,
        policies: refs(&["vo-v1", "vo-v3", "vo-v5", "ha-v1"]),
        axis: Axis::Rates(vec![0.5]),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables: vec![table(
            TableKind::Profile,
            "Table II ({panel}) — execution profile at p=0.5",
        )],
    }
}

fn ablations() -> ScenarioSpec {
    let mut policies = vec![PolicyRef::labeled("ha-v1", "MOON-Hybrid (full)")];
    policies.extend(refs(&[
        "no-hibernate",
        "no-adaptive-v",
        "no-homestretch",
        "spec-cap-10",
        "spec-cap-40",
        "hadoop-fetch-rule",
        "homestretch-r1",
        "homestretch-r3",
    ]));
    ScenarioSpec {
        name: "ablations".into(),
        title: "Single-mechanism ablations of MOON-Hybrid (sort, p=0.5)".into(),
        workloads: vec!["sort".into()],
        panels: vec![String::new()],
        policies,
        axis: Axis::Rates(vec![0.5]),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables: vec![table(
            TableKind::Detail,
            "# Ablations — sort, p=0.5 (job time / duplicated tasks / killed maps)",
        )],
    }
}

fn diurnal_lab() -> ScenarioSpec {
    ScenarioSpec {
        name: "diurnal-lab".into(),
        title: "Correlated diurnal lab-session fleets at rising session intensity".into(),
        workloads: vec!["sort".into()],
        panels: vec![String::new()],
        policies: refs(&["moon-hybrid", "hadoop-1min"]),
        axis: Axis::Correlated(CorrelatedAxis {
            points: vec![0.5, 1.0, 2.0],
            knob: CorrelatedKnob::SessionsPerHour,
            sessions_per_hour: 1.0,
            session_fraction: 0.35,
            background: 0.15,
            diurnal: true,
        }),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables: vec![table(
            TableKind::Time,
            "Diurnal lab{panel}: execution time vs lab-session intensity (sessions/hour)",
        )],
    }
}

fn blackout() -> ScenarioSpec {
    ScenarioSpec {
        name: "blackout".into(),
        title: "Correlated mass outages capturing half to nearly all of the fleet at once".into(),
        workloads: vec!["sort".into()],
        panels: vec![String::new()],
        policies: refs(&["moon-hybrid", "ha-v3", "hadoop-vo-v3"]),
        axis: Axis::Correlated(CorrelatedAxis {
            points: vec![0.5, 0.75, 0.95],
            knob: CorrelatedKnob::SessionFraction,
            sessions_per_hour: 0.25,
            session_fraction: 0.3,
            background: 0.05,
            diurnal: false,
        }),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables: vec![table(
            TableKind::Time,
            "Blackout{panel}: execution time vs mass-outage fleet fraction",
        )],
    }
}

fn trace_replay() -> ScenarioSpec {
    ScenarioSpec {
        name: "trace-replay".into(),
        title: "Replay the committed lab-day availability trace file".into(),
        workloads: vec!["sort".into()],
        panels: vec![String::new()],
        policies: refs(&["moon-hybrid", "hadoop-1min"]),
        axis: Axis::TraceFile {
            path: "data/traces/lab-day.trace".into(),
        },
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables: vec![table(
            TableKind::Time,
            "Trace replay{panel}: execution time on the recorded lab trace",
        )],
    }
}

fn high_churn() -> ScenarioSpec {
    ScenarioSpec {
        name: "high-churn".into(),
        title: "Scheduling policies under extreme churn, up to p=0.7".into(),
        workloads: vec!["sort".into()],
        panels: vec![String::new()],
        policies: refs(&["moon-hybrid", "moon", "hadoop-1min", "hadoop-vo-v3"]),
        axis: Axis::Rates(vec![0.3, 0.5, 0.7]),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: None,
        telemetry: None,
        tables: vec![
            table(TableKind::Time, "High churn{panel}: execution time"),
            table(TableKind::Duplicates, "High churn{panel}: duplicated tasks"),
        ],
    }
}

fn job_stream_light() -> ScenarioSpec {
    ScenarioSpec {
        name: "job-stream-light".into(),
        title: "Light multi-job stream: 4 quick jobs arrive a minute apart".into(),
        workloads: vec!["quick".into()],
        panels: vec![String::new()],
        policies: refs(&["moon-hybrid", "hadoop-1min"]),
        axis: Axis::Rates(vec![0.1]),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: Some(7200),
        jobs: Some(JobStreamSpec::new(ArrivalSpec::Batch {
            offsets_secs: vec![0.0, 60.0, 120.0, 180.0],
        })),
        telemetry: None,
        tables: vec![
            table(TableKind::Time, "Job stream light{panel}: stream makespan"),
            table(TableKind::Jobs, "Job stream light{panel}: per-job SLOs"),
        ],
    }
}

fn job_stream_heavy() -> ScenarioSpec {
    ScenarioSpec {
        name: "job-stream-heavy".into(),
        title: "Heavy open Poisson stream of quick jobs under churn (FIFO vs fair share)".into(),
        workloads: vec!["quick".into()],
        panels: vec![String::new()],
        policies: refs(&["moon-hybrid", "moon-hybrid+fair", "hadoop-1min"]),
        axis: Axis::Rates(vec![0.3]),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: Some(14400),
        jobs: Some(JobStreamSpec::new(ArrivalSpec::Poisson {
            rate_per_hour: 720.0,
            count: 24,
        })),
        telemetry: None,
        tables: vec![
            table(TableKind::Time, "Job stream heavy{panel}: stream makespan"),
            table(TableKind::Jobs, "Job stream heavy{panel}: per-job SLOs"),
        ],
    }
}

fn mixed_apps_contention() -> ScenarioSpec {
    ScenarioSpec {
        name: "mixed-apps-contention".into(),
        title: "Closed clients alternating sort and word count on one contended cluster".into(),
        workloads: vec!["sort".into()],
        panels: vec![String::new()],
        policies: refs(&["moon-hybrid", "moon-hybrid+fair"]),
        axis: Axis::Rates(vec![0.3]),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: Some(JobStreamSpec {
            workloads: vec!["sort".into(), "word count".into()],
            ..JobStreamSpec::new(ArrivalSpec::Closed {
                clients: 2,
                jobs_per_client: 2,
                think_secs: 120.0,
            })
        }),
        telemetry: None,
        tables: vec![
            table(
                TableKind::Time,
                "Mixed apps{panel}: stream makespan under contention",
            ),
            table(TableKind::Jobs, "Mixed apps{panel}: per-job SLOs"),
        ],
    }
}

/// Deadline-aware sibling of [`mixed_apps_contention`]: the same
/// contended closed stream, but every job carries a relative deadline
/// and the rows contrast FIFO against preemptive EDF. The jobs table
/// gains the gated `miss_rate`/`preempted` columns, quantifying EDF's
/// deadline wins against its kill-and-requeue makespan cost.
fn mixed_apps_contention_edf() -> ScenarioSpec {
    ScenarioSpec {
        name: "mixed-apps-contention+edf".into(),
        title: "Mixed apps under deadlines: preemptive EDF vs FIFO on a contended cluster".into(),
        workloads: vec!["sort".into()],
        panels: vec![String::new()],
        policies: refs(&["moon-hybrid", "moon-hybrid+edf"]),
        axis: Axis::Rates(vec![0.3]),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: Some(JobStreamSpec {
            workloads: vec!["sort".into(), "word count".into()],
            // Cycled with the workloads: sort gets the loose deadline,
            // word count the tight one EDF must preempt to protect.
            deadlines_secs: vec![5400.0, 1200.0],
            ..JobStreamSpec::new(ArrivalSpec::Closed {
                clients: 3,
                jobs_per_client: 2,
                think_secs: 30.0,
            })
        }),
        telemetry: None,
        tables: vec![
            table(
                TableKind::Time,
                "Mixed apps EDF{panel}: stream makespan under contention",
            ),
            table(TableKind::Jobs, "Mixed apps EDF{panel}: per-job SLOs"),
        ],
    }
}

/// Preemption-cost sibling of [`mixed_apps_contention`]: fair share
/// with and without kill-and-requeue preemption (plus weighted
/// tenant-fair) on the same contended stream, measuring the p95
/// queueing-delay win preemption buys against its makespan cost.
fn mixed_apps_contention_preempt() -> ScenarioSpec {
    ScenarioSpec {
        name: "mixed-apps-contention+preempt".into(),
        title: "Mixed apps: preemptive vs non-preemptive fair share under contention".into(),
        workloads: vec!["sort".into()],
        panels: vec![String::new()],
        policies: refs(&[
            "moon-hybrid+fair",
            "moon-hybrid+fair+preempt",
            "moon-hybrid+tenant-fair",
        ]),
        axis: Axis::Rates(vec![0.3]),
        dedicated: 6,
        n_volatile: None,
        seeds: None,
        horizon_secs: None,
        jobs: Some(JobStreamSpec {
            workloads: vec!["sort".into(), "word count".into()],
            // Alternate jobs across two tenants; tenant 0 carries twice
            // the weight and each tenant keeps one guaranteed slot.
            tenants: vec![0, 1],
            tenant_weights: vec![2, 1],
            tenant_min_slots: vec![1, 1],
            ..JobStreamSpec::new(ArrivalSpec::Closed {
                clients: 3,
                jobs_per_client: 2,
                think_secs: 30.0,
            })
        }),
        telemetry: None,
        tables: vec![
            table(
                TableKind::Time,
                "Mixed apps preemption{panel}: stream makespan under contention",
            ),
            table(
                TableKind::Jobs,
                "Mixed apps preemption{panel}: per-job SLOs",
            ),
        ],
    }
}

/// A datacenter-scale saturation sweep: `n_volatile` volunteer nodes
/// (plus 10% dedicated) under a Poisson stream of quick jobs whose
/// arrival rate rises across columns — the load-vs-bounded-slowdown
/// curve at fleet scale. The node counts are pinned even in quick
/// mode (scale is the point; quick mode still shrinks per-job work).
fn fleet(name: &str, scale: &str, n_volatile: u32, horizon_secs: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: name.into(),
        title: format!(
            "Saturation sweep on a {scale}-node fleet: arrival rate vs bounded slowdown"
        ),
        workloads: vec!["quick".into()],
        panels: vec![String::new()],
        policies: refs(&["moon-hybrid", "hadoop-1min"]),
        axis: Axis::Load(LoadAxis {
            points: vec![30.0, 60.0, 120.0, 240.0],
            rate: 0.3,
            n_volatile: Some(n_volatile),
        }),
        dedicated: n_volatile / 10,
        n_volatile: None,
        seeds: None,
        horizon_secs: Some(horizon_secs),
        jobs: Some(JobStreamSpec::new(ArrivalSpec::Poisson {
            rate_per_hour: 60.0,
            count: 12,
        })),
        telemetry: None,
        tables: vec![
            table(
                TableKind::Saturation,
                &format!("Fleet {scale}{{panel}}: bounded slowdown vs arrival rate"),
            ),
            table(
                TableKind::Jobs,
                &format!("Fleet {scale}{{panel}}: per-job SLOs at the base rate"),
            ),
        ],
    }
}

fn fleet_1k() -> ScenarioSpec {
    fleet("fleet-1k", "1k", 1_000, 3600)
}

fn fleet_10k() -> ScenarioSpec {
    fleet("fleet-10k", "10k", 10_000, 2700)
}

/// Every built-in scenario, in catalog order (paper reproductions
/// first, then the stress scenarios, then the multi-job streams).
pub fn all() -> Vec<ScenarioSpec> {
    vec![
        fig4(),
        fig5(),
        fig6(),
        fig7(),
        table1(),
        table2(),
        ablations(),
        diurnal_lab(),
        blackout(),
        trace_replay(),
        high_churn(),
        job_stream_light(),
        job_stream_heavy(),
        mixed_apps_contention(),
        mixed_apps_contention_edf(),
        mixed_apps_contention_preempt(),
        fleet_1k(),
        fleet_10k(),
    ]
}

/// Look up a built-in scenario by name.
pub fn find(name: &str) -> Option<ScenarioSpec> {
    all().into_iter().find(|s| s.name == name)
}

/// The catalog's names, for error messages and `moon-cli list`.
pub fn names() -> Vec<String> {
    all().into_iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_paper_and_stress_scenarios() {
        let names = names();
        for required in [
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "table1",
            "table2",
            "diurnal-lab",
            "blackout",
            "trace-replay",
            "high-churn",
            "job-stream-light",
            "job-stream-heavy",
            "mixed-apps-contention",
            "mixed-apps-contention+edf",
            "mixed-apps-contention+preempt",
            "fleet-1k",
            "fleet-10k",
        ] {
            assert!(names.contains(&required.to_string()), "missing {required}");
        }
    }

    #[test]
    fn job_stream_scenarios_carry_streams() {
        let light = find("job-stream-light").unwrap();
        assert_eq!(light.jobs.as_ref().unwrap().total_jobs(), 4);
        let heavy = find("job-stream-heavy").unwrap();
        assert_eq!(heavy.jobs.as_ref().unwrap().total_jobs(), 24);
        let mixed = find("mixed-apps-contention").unwrap();
        let jobs = mixed.jobs.as_ref().unwrap();
        assert_eq!(jobs.total_jobs(), 4);
        assert_eq!(jobs.workloads, vec!["sort", "word count"]);
        // Single-job paper scenarios carry no stream.
        assert!(find("fig4").unwrap().jobs.is_none());
    }

    #[test]
    fn preemption_variants_carry_scheduling_metadata() {
        let edf = find("mixed-apps-contention+edf").unwrap();
        let jobs = edf.jobs.as_ref().unwrap();
        assert!(jobs.has_metadata(), "EDF variant needs deadlines");
        assert_eq!(jobs.deadlines_secs.len(), 2);
        assert!(edf.policies.iter().any(|p| p.id.ends_with("+edf")));

        let pre = find("mixed-apps-contention+preempt").unwrap();
        let jobs = pre.jobs.as_ref().unwrap();
        assert_eq!(jobs.tenants, vec![0, 1]);
        assert_eq!(jobs.tenant_weights, vec![2, 1]);
        assert_eq!(jobs.tenant_min_slots, vec![1, 1]);
        assert!(pre.policies.iter().any(|p| p.id.ends_with("+preempt")));
        assert!(pre.policies.iter().any(|p| p.id.ends_with("+tenant-fair")));
    }

    #[test]
    fn fleet_scenarios_sweep_load_at_scale() {
        for (name, n_volatile) in [("fleet-1k", 1_000u32), ("fleet-10k", 10_000)] {
            let spec = find(name).unwrap();
            let Axis::Load(l) = &spec.axis else {
                panic!("{name} must sweep a load axis");
            };
            assert!(l.points.len() >= 4, "{name} needs >= 4 load columns");
            assert_eq!(l.n_volatile, Some(n_volatile));
            assert_eq!(spec.dedicated, n_volatile / 10);
            assert!(spec.policies.len() >= 2);
            assert!(spec.tables.iter().any(|t| t.kind == TableKind::Saturation));
            assert!(spec.jobs.is_some(), "{name} scales a jobs stream");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names = names();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len());
    }

    #[test]
    fn find_works() {
        assert_eq!(find("fig4").unwrap().name, "fig4");
        assert!(find("fig9").is_none());
    }

    #[test]
    fn every_policy_id_in_the_catalog_resolves() {
        for spec in all() {
            for p in &spec.policies {
                crate::policy::resolve(&p.id).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            }
        }
    }

    #[test]
    fn fig7_rows_carry_dedicated_overrides() {
        let f7 = find("fig7").unwrap();
        assert_eq!(f7.policies[0].label.as_deref(), Some("Hadoop-VO"));
        assert_eq!(f7.policies[1].dedicated, Some(3));
        assert_eq!(f7.policies[3].dedicated, Some(6));
    }
}
