//! Distribution traits and uniform range sampling (the `rand 0.8`
//! `distributions` module surface this workspace uses).

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// A sampling distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types that support uniform sampling from a bounded range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)` (`high` is exclusive).
    fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]` (`high` is inclusive).
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "empty gen_range");
                let span = (high as i128 - low as i128) as u128;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "empty gen_range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "empty gen_range");
                let u: $t = Standard.sample(&mut *rng);
                low + u * (high - low)
            }
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // A degenerate range `a..=a` is valid and returns `a`
                // (matching real rand). For `low < high` the exclusive
                // sampler is reused: the upper endpoint of a float range
                // has measure zero, so the distinction is immaterial.
                assert!(low <= high, "empty gen_range");
                if low == high {
                    return low;
                }
                Self::sample_uniform(low, high, rng)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform_inclusive(start, end, rng)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = crate::Rng::gen_range(&mut r, 5u64..17);
            assert!((5..17).contains(&x));
            let y: u8 = crate::Rng::gen_range(&mut r, b'a'..=b'z');
            assert!(y.is_ascii_lowercase());
            let z = crate::Rng::gen_range(&mut r, -3i64..4);
            assert!((-3..4).contains(&z));
            let f = crate::Rng::gen_range(&mut r, 0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
            let g = crate::Rng::gen_range(&mut r, 0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
        // Degenerate inclusive float range is valid and returns its bound.
        assert_eq!(crate::Rng::gen_range(&mut r, 2.5f64..=2.5), 2.5);
    }

    #[test]
    fn range_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| crate::Rng::gen_range(&mut r, 0.0f64..10.0))
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }
}
