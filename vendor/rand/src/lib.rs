//! Offline vendored shim for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors minimal, API-compatible stand-ins for its external
//! dependencies (see `DESIGN.md` §vendor). This crate mirrors the call
//! surface the simulator uses — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`seq::SliceRandom`], and
//! [`distributions::Distribution`] — over a xoshiro256++ generator
//! seeded through SplitMix64.
//!
//! The bit streams differ from the real `rand` crate, which is fine:
//! nothing in the workspace asserts golden random values, only
//! run-to-run determinism and statistical properties.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, SampleRange, Standard};

/// A random number generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value whose type has a [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}
