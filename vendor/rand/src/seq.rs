//! Slice helpers (`rand::seq::SliceRandom` subset).

use crate::Rng;

/// Shuffling and random element selection for slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(10);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut r).unwrap();
            seen[x as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
