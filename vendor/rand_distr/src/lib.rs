//! Offline vendored shim for the subset of `rand_distr` 0.4 used by
//! this workspace: [`StandardNormal`], [`Normal`], [`Exp`], and
//! [`Poisson`], plus the re-exported [`Distribution`] trait.
//!
//! Sampling algorithms are textbook (Box–Muller, inverse CDF, Knuth
//! multiplication with a Normal approximation for large rates). The
//! workspace only asserts statistical properties and run-to-run
//! determinism, never golden values, so differing from the real crate's
//! ziggurat streams is acceptable.

pub use rand::distributions::Distribution;
use rand::Rng;
use std::fmt;

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// The standard Normal distribution N(0, 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller. Draw u1 from (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Normal distribution N(mean, std²).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Construct from mean and standard deviation (must be finite, ≥ 0).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Construct from the rate parameter (must be finite and > 0).
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF over u in (0, 1].
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }
}

/// Poisson distribution with the given mean rate.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Construct from the rate parameter (must be finite and > 0).
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error);
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth multiplication.
            let limit = (-self.lambda).exp();
            let mut p = 1.0;
            let mut k = 0u64;
            loop {
                p *= rng.gen::<f64>();
                if p <= limit {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            // Normal approximation, adequate for large rates.
            let x = self.lambda + self.lambda.sqrt() * StandardNormal.sample(rng);
            x.round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut r = StdRng::seed_from_u64(11);
        let d = Normal::new(100.0, 15.0).unwrap();
        let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 15.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let mut r = StdRng::seed_from_u64(12);
        let d = Exp::new(0.25).unwrap();
        let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r)).collect();
        let (mean, _) = moments(&xs);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = StdRng::seed_from_u64(13);
        for lambda in [0.5, 4.0, 80.0] {
            let d = Poisson::new(lambda).unwrap();
            let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r)).collect();
            let (mean, _) = moments(&xs);
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "λ={lambda}, mean {mean}"
            );
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
    }
}
