//! Parallel-iterator adapters over the pool.
//!
//! The execution model is deliberately simpler than real rayon's
//! splitter/reducer plumbing: a chain is driven to a materialized
//! `Vec`, and each `map`/`filter`/`for_each` stage fans its closure out
//! over the pool via [`pool::execute`], which preserves input order by
//! construction. For this workspace — coarse-grained simulation runs
//! where one closure call costs seconds — the per-item boxing is noise,
//! and the call surface (`into_par_iter().map(..).collect()`) matches
//! the real crate so it can be swapped back in with no call-site
//! changes.

use crate::pool;

/// A parallel iterator: a chain that can be driven to an ordered `Vec`.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Drive the chain to completion, returning items in input order.
    ///
    /// Shim detail (not part of real rayon's surface): adapters call
    /// this on their base, then run their own stage on the pool.
    fn drive(self) -> Vec<Self::Item>;

    /// Map every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Pair every item with its index (indices reflect input order).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Keep only items matching `pred`, evaluated in parallel.
    fn filter<P>(self, pred: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, pred }
    }

    /// Run `f` on every item in parallel (no result).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).drive();
    }

    /// Collect into any `FromIterator` collection, in input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }

    /// Number of items the chain yields.
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Base parallel iterator over an owned, materialized batch of items.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// `map` adapter: the parallel workhorse.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        pool::execute(self.base.drive(), &self.f)
    }
}

/// `enumerate` adapter (index bookkeeping is sequential and cheap).
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn drive(self) -> Vec<(usize, I::Item)> {
        self.base.drive().into_iter().enumerate().collect()
    }
}

/// `filter` adapter: the predicate runs in parallel.
pub struct Filter<I, P> {
    base: I,
    pred: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;

    fn drive(self) -> Vec<I::Item> {
        let pred = self.pred;
        let keep = |item: I::Item| pred(&item).then_some(item);
        pool::execute(self.base.drive(), &keep)
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Conversion into a parallel iterator (consuming).
pub trait IntoParallelIterator {
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert into the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Iter = VecParIter<I::Item>;
    type Item = I::Item;

    fn into_par_iter(self) -> VecParIter<I::Item> {
        VecParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Borrowing conversion (`par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a borrow of the collection's elements).
    type Item: Send + 'data;
    /// Iterate by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoIterator,
    <&'data I as IntoIterator>::Item: Send,
{
    type Iter = VecParIter<<&'data I as IntoIterator>::Item>;
    type Item = <&'data I as IntoIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        VecParIter {
            items: self.into_iter().collect(),
        }
    }
}
