//! The global work-stealing thread pool.
//!
//! Layout is the classic injector/deque scheme:
//!
//! - **Global injector** — a FIFO queue where batches are submitted.
//! - **Per-worker deques** — each worker drains its own deque LIFO (hot
//!   caches), pulls chunks from the injector when its deque runs dry,
//!   and *steals* FIFO from a sibling's deque when both are empty.
//!
//! The pool is created lazily on first use, sized by (in priority
//! order) [`ThreadPoolBuilder::build_global`], `MOON_THREADS`,
//! `RAYON_NUM_THREADS`, then [`std::thread::available_parallelism`].
//! Worker threads are detached and live for the rest of the process;
//! they sleep on a condvar while no work is queued.
//!
//! [`execute`] is the only entry point the iterator layer needs: it
//! fans a batch of independent tasks out to the pool, writes each
//! result into its caller-indexed slot (so output order never depends
//! on scheduling), counts completions down on a latch, and re-raises
//! the first task panic on the calling thread after the whole batch has
//! drained — a task panic can therefore never leave a borrow dangling
//! or a sibling task orphaned.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of pool work: a boxed, type-erased task.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Configures the global thread pool, mirroring rayon's builder API.
///
/// Only the pieces this workspace uses are implemented: thread count
/// selection and [`build_global`](Self::build_global). The builder must
/// run before the pool's first use; afterwards the pool is immutable.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error returned when the global pool was already configured or built.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building with default settings (automatic thread count).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request an explicit worker count (`0` = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install this configuration as the global pool's.
    ///
    /// Fails if the global pool was already configured (by an earlier
    /// `build_global` or by any parallel-iterator use, which snapshots
    /// the environment-derived default).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        CONFIGURED_THREADS.set(n).map_err(|_| ThreadPoolBuildError)
    }
}

/// Resolved thread count for the global pool (set exactly once).
static CONFIGURED_THREADS: OnceLock<usize> = OnceLock::new();

/// The lazily-built global pool (`None` when single-threaded).
static POOL: OnceLock<Option<Pool>> = OnceLock::new();

thread_local! {
    /// True on pool worker threads; nested parallel calls run inline.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Thread count from the environment: `MOON_THREADS` wins over
/// `RAYON_NUM_THREADS`, which wins over the hardware count.
///
/// Values are trimmed before parsing — the same rule as
/// `simkit::env::env_u64`, which this shim can't call (it sits below
/// simkit in the dependency graph) but deliberately mirrors so every
/// `MOON_*` knob in the workspace reads the environment identically.
fn default_threads() -> usize {
    for var in ["MOON_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of worker threads the global pool has (or will have).
pub fn current_num_threads() -> usize {
    *CONFIGURED_THREADS.get_or_init(default_threads)
}

/// State shared between the submitting thread and all workers.
struct Shared {
    /// Global FIFO injector; batches land here.
    injector: Mutex<VecDeque<Job>>,
    /// Workers sleep here when every queue is empty.
    wake: Condvar,
    /// One deque per worker: owner pops the back, thieves pop the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted but not yet dequeued by any worker (injector +
    /// all deques). Incremented under the injector lock before the
    /// submit notify; decremented on every successful pop. A worker
    /// only blocks when this reads 0 under the injector lock, so a
    /// submit can never slip between a failed steal scan and the wait —
    /// idle workers park indefinitely (no timed backstop wakeups).
    queued: AtomicUsize,
}

struct Pool {
    shared: Arc<Shared>,
}

impl Pool {
    fn new(n_threads: usize) -> Pool {
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            deques: (0..n_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            queued: AtomicUsize::new(0),
        });
        for id in 0..n_threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("moon-pool-{id}"))
                .spawn(move || worker_loop(id, &shared))
                .expect("spawning pool worker");
        }
        Pool { shared }
    }

    /// Enqueue a batch on the injector and wake every sleeping worker.
    fn submit(&self, jobs: Vec<Job>) {
        let mut inj = self.shared.injector.lock().unwrap();
        self.shared.queued.fetch_add(jobs.len(), Ordering::SeqCst);
        inj.extend(jobs);
        self.shared.wake.notify_all();
    }
}

/// Get the global pool, building it on first use. `None` means the pool
/// is single-threaded and callers should run inline.
fn global() -> Option<&'static Pool> {
    POOL.get_or_init(|| {
        let n = current_num_threads();
        (n > 1).then(|| Pool::new(n))
    })
    .as_ref()
}

/// Run one job, containing any panic (the job's own wrapper reports it).
fn run_job(job: Job) {
    let _ = catch_unwind(AssertUnwindSafe(job));
}

/// Steal the oldest job from a sibling deque, scanning from `id + 1`.
/// `try_lock` keeps thieves from convoying behind a busy owner.
fn steal(id: usize, shared: &Shared) -> Option<Job> {
    let k = shared.deques.len();
    for off in 1..k {
        if let Ok(mut d) = shared.deques[(id + off) % k].try_lock() {
            if let Some(job) = d.pop_front() {
                return Some(job);
            }
        }
    }
    None
}

fn worker_loop(id: usize, shared: &Shared) {
    IS_WORKER.with(|f| f.set(true));
    loop {
        // 1. Own deque, newest first (the owner end).
        let own = shared.deques[id].lock().unwrap().pop_back();
        if let Some(job) = own {
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            run_job(job);
            continue;
        }
        // 2. Steal from a sibling, oldest first (the thief end).
        if let Some(job) = steal(id, shared) {
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            run_job(job);
            continue;
        }
        // 3. Pull a chunk from the injector into the own deque, so
        //    later iterations (and thieves) find local work. The jobs
        //    moved to the deque stay counted in `queued` (they are
        //    still dequeue-able); only `first`, taken to run, is not.
        let mut inj = shared.injector.lock().unwrap();
        if !inj.is_empty() {
            let chunk = (inj.len() / (2 * shared.deques.len())).max(1);
            let first = inj.pop_front().expect("non-empty injector");
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            if chunk > 1 {
                let mut own = shared.deques[id].lock().unwrap();
                for _ in 1..chunk {
                    match inj.pop_front() {
                        Some(job) => own.push_back(job),
                        None => break,
                    }
                }
                drop(own);
                // Siblings may be asleep; what we just queued is stealable.
                shared.wake.notify_all();
            }
            drop(inj);
            run_job(first);
            continue;
        }
        // 4. Injector empty. If jobs are still queued they sit in a
        //    sibling's deque (possibly one our `try_lock` steal scan
        //    skipped) — retry the scan rather than sleep. Otherwise
        //    park until a submit notifies: `queued` is incremented
        //    under this same injector lock before the notify, so a
        //    submit can never slip past this check unseen.
        if shared.queued.load(Ordering::SeqCst) > 0 {
            drop(inj);
            std::thread::yield_now();
            continue;
        }
        let _unused = shared.wake.wait(inj).unwrap();
    }
}

/// Countdown latch: the submitter waits until every job has finished.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.done.wait(left).unwrap();
        }
    }
}

/// Apply `f` to every item on the global pool, returning results in
/// input order. Runs inline when the batch is trivial, the pool is
/// single-threaded, or the caller is itself a pool worker (nested
/// parallelism would deadlock the latch against a finite worker set).
///
/// If any task panics, the batch still drains fully (the latch counts
/// every task) and the first captured panic is re-raised here.
pub(crate) fn execute<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let inline = n <= 1 || IS_WORKER.with(Cell::get);
    let pool = if inline { None } else { global() };
    let Some(pool) = pool else {
        return items.into_iter().map(f).collect();
    };

    // `Mutex<Option<R>>` rather than `OnceLock<R>`: sharing a slot
    // across threads must only require `R: Send`, not `R: Sync`.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let latch = Latch::new(n);
    let panic_box: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    let jobs: Vec<Job> = items
        .into_iter()
        .zip(&slots)
        .map(|(item, slot)| {
            let latch = &latch;
            let panic_box = &panic_box;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => {
                        *slot.lock().unwrap() = Some(r);
                    }
                    Err(payload) => {
                        let mut first = panic_box.lock().unwrap();
                        first.get_or_insert(payload);
                    }
                }
                latch.count_down();
            });
            // SAFETY: the job borrows `f`, `slots`, `latch`, and
            // `panic_box`, all of which outlive it: `latch.wait()`
            // below does not return until every job has run to
            // completion (panics are caught inside the job, and the
            // count-down happens after the catch), so no borrow
            // escapes this stack frame.
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
        })
        .collect();

    pool.submit(jobs);
    latch.wait();

    if let Some(payload) = panic_box.lock().unwrap().take() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock never poisoned")
                .expect("every task completed")
        })
        .collect()
}
