//! Offline vendored shim for the `rayon` API surface this workspace
//! uses, executing sequentially.
//!
//! `into_par_iter()` simply returns the standard iterator, so the
//! downstream adapter chain (`enumerate`, `map`, `collect`, …) compiles
//! and runs unchanged — single-threaded. When a registry is available,
//! swapping in the real crate restores parallelism with no call-site
//! changes.

pub mod prelude {
    /// Conversion into a "parallel" iterator (sequential here).
    pub trait IntoParallelIterator {
        /// The iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;
        /// Convert into the iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// Borrowing conversion (`par_iter()`), sequential here.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item: 'data;
        /// Iterate by reference.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Iter = <&'data I as IntoIterator>::IntoIter;
        type Item = <&'data I as IntoIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u64 = v.par_iter().sum();
        assert_eq!(sum, 10);
    }
}
