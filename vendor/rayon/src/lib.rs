//! Offline vendored shim for the `rayon` API surface this workspace
//! uses, backed by a real work-stealing thread pool.
//!
//! `into_par_iter()` / `par_iter()` return a
//! [`ParallelIterator`](prelude::ParallelIterator) whose `map` /
//! `filter` / `for_each` stages fan out over a global pool of
//! `std::thread` workers (per-worker deques + a global injector — see
//! `src/pool.rs`'s module docs), while `collect` returns
//! results in input order regardless of scheduling. The downstream
//! adapter chain (`enumerate`, `map`, `collect`, …) compiles and runs
//! unchanged against real rayon, so when a crate registry is available
//! the shim can be swapped out with no call-site changes.
//!
//! Pool size: [`ThreadPoolBuilder::build_global`] if called before
//! first use, else `MOON_THREADS`, else `RAYON_NUM_THREADS`, else the
//! hardware thread count. With one thread, everything runs inline on
//! the caller.
//!
//! Differences from real rayon worth knowing about:
//!
//! - Chains are driven stage-by-stage through materialized `Vec`s and
//!   each item is a boxed task — fine for this workspace's
//!   coarse-grained jobs (whole simulation runs), wasteful for
//!   element-wise numeric kernels.
//! - Terminal reductions (`sum`, `count`) fold sequentially after the
//!   parallel stages.
//! - Nested parallel calls from inside a pool task run inline instead
//!   of cooperatively yielding.

#![warn(missing_docs)]

mod iter;
mod pool;

pub use pool::{current_num_threads, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    //! Traits that make `.into_par_iter()` / `.par_iter()` available.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// Every test shares the process-global pool; pin it to 4 workers
    /// so the pool paths are exercised even on a 1-core runner. All
    /// callers request the same count, so ordering doesn't matter and
    /// "already configured" is fine.
    fn pool4() {
        let _ = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global();
    }

    #[test]
    fn par_iter_behaves_like_iter() {
        pool4();
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u64 = v.par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn empty_and_single_item_batches() {
        pool4();
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![41u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
        assert_eq!(Vec::<u32>::new().into_par_iter().count(), 0);
    }

    #[test]
    fn collect_preserves_order_under_contention() {
        pool4();
        // Skewed task durations force stealing and out-of-order
        // completion; collect must still return input order.
        let n = 200usize;
        let out: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|i| {
                if i % 17 == 0 {
                    std::thread::sleep(Duration::from_millis(3));
                }
                i
            })
            .collect();
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_match_input_order() {
        pool4();
        let labels = ["a", "b", "c", "d", "e"];
        let out: Vec<(usize, String)> = labels
            .par_iter()
            .map(|s| s.to_string())
            .enumerate()
            .map(|(i, s)| (i, format!("{i}:{s}")))
            .collect();
        for (i, (j, s)) in out.iter().enumerate() {
            assert_eq!(i, *j);
            assert_eq!(*s, format!("{i}:{}", labels[i]));
        }
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        pool4();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _: Vec<u32> = (0u32..64)
                .into_par_iter()
                .map(|x| if x == 33 { panic!("boom at {x}") } else { x })
                .collect();
        }));
        let payload = result.expect_err("task panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "unexpected payload: {msg:?}");
    }

    #[test]
    fn panic_still_drains_the_whole_batch() {
        pool4();
        // Every non-panicking task must still run (the latch waits for
        // all of them), even when an early task panics.
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            (0u32..50).into_par_iter().for_each(|x| {
                if x == 0 {
                    panic!("early");
                }
                RAN.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(RAN.load(Ordering::Relaxed), 49);
    }

    #[test]
    fn many_panics_drain_fully_and_report_exactly_once() {
        pool4();
        // The campaign layer relies on this containment contract: even
        // when several tasks panic, the batch drains (sibling side
        // effects persist) and exactly one panic reaches the caller —
        // the pool never aborts and never double-raises.
        static SURVIVORS: AtomicUsize = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            (0u32..40).into_par_iter().for_each(|x| {
                if x % 10 == 0 {
                    panic!("boom {x}");
                }
                SURVIVORS.fetch_add(1, Ordering::Relaxed);
            });
        }));
        let payload = result.expect_err("one panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.starts_with("boom"), "unexpected payload: {msg:?}");
        assert_eq!(SURVIVORS.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn filter_and_for_each_work() {
        pool4();
        let kept: Vec<u32> = (0u32..100).into_par_iter().filter(|x| x % 3 == 0).collect();
        assert_eq!(kept, (0u32..100).filter(|x| x % 3 == 0).collect::<Vec<_>>());

        static SUM: AtomicUsize = AtomicUsize::new(0);
        (1usize..=10).into_par_iter().for_each(|x| {
            SUM.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(SUM.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn tasks_actually_run_on_pool_threads() {
        pool4();
        // With 4 workers and staggered tasks, at least two distinct
        // worker threads should participate.
        let names: Vec<String> = (0..32)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(Duration::from_millis(1));
                std::thread::current().name().unwrap_or("?").to_string()
            })
            .collect();
        assert!(
            names.iter().all(|n| n.starts_with("moon-pool-")),
            "work ran outside the pool: {names:?}"
        );
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        assert!(distinct.len() >= 2, "no parallelism observed: {distinct:?}");
    }
}
