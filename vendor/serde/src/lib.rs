//! Offline vendored shim for `serde`: marker traits plus the no-op
//! derive macros from the sibling `serde_derive` shim.
//!
//! Types across the workspace annotate themselves with
//! `#[derive(serde::Serialize, serde::Deserialize)]` so that swapping
//! in the real serde later is a manifest-only change. Here the derives
//! expand to nothing and the traits carry no methods — the annotations
//! compile, and nothing in the tree relies on generated serialization
//! (the bench JSON dump is hand-rolled; see `DESIGN.md` §vendor).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}
