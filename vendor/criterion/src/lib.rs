//! Offline vendored shim for the `criterion` API surface this
//! workspace's benches use.
//!
//! Provides [`Criterion`], [`BenchmarkId`], benchmark groups, the
//! `criterion_group!` / `criterion_main!` macros, and [`black_box`].
//! Measurement is a simple wall-clock loop (one warm-up pass, then
//! `sample_size` timed iterations) printing mean time per iteration —
//! adequate for the repo's "is the simulator getting slower" smoke use
//! until the real crate can be pulled from a registry.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Number of timed iterations when a bench does not override it.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Identifier of a parameterized benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs the measured loop.
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    mean_nanos: f64,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / self.sample_size as f64;
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror of the real crate's CLI hook; accepts no options here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark that takes a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// End the group (report-flush point in the real crate; no-op here).
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        mean_nanos: 0.0,
    };
    f(&mut b);
    if b.mean_nanos >= 1e6 {
        println!("{label}: {:.3} ms/iter", b.mean_nanos / 1e6);
    } else {
        println!("{label}: {:.0} ns/iter", b.mean_nanos);
    }
}

/// Define a named group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // one warm-up + DEFAULT_SAMPLE_SIZE timed iterations
        assert_eq!(runs, 1 + DEFAULT_SAMPLE_SIZE as u32);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &_x| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 4);
    }
}
