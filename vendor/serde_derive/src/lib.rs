//! Offline vendored shim: no-op `Serialize` / `Deserialize` derive
//! macros.
//!
//! The build environment has no crate registry, so the workspace keeps
//! its `#[derive(serde::Serialize, serde::Deserialize)]` annotations
//! (and `#[serde(...)]` attributes) compiling via these macros, which
//! expand to nothing. No serialization code is generated; the two call
//! sites that actually serialized (the bench JSON dump and one
//! round-trip test) were rewritten against hand-rolled JSON. Replacing
//! this crate with the real serde_derive restores full functionality
//! without touching the annotated types.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
