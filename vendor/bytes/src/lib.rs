//! Offline vendored shim for the subset of the `bytes` crate API this
//! workspace uses: an immutable, cheaply-cloneable byte buffer.
//!
//! Backed by `Arc<[u8]>` — clones are reference-count bumps, matching
//! the real crate's cost model for the operations the MapReduce
//! functional engine performs (cloning record keys/values between map,
//! combine, shuffle, and reduce stages).

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes(Arc::from(b))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes(iter.into_iter().collect())
    }
}

impl fmt::Debug for Bytes {
    /// Render as an ASCII-escaped byte string, like the real crate.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_ordering() {
        let a = Bytes::from(b"abc".to_vec());
        let b = Bytes::from_static(b"abd");
        assert!(a < b);
        assert_eq!(&*a, b"abc");
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(Bytes::from(String::from("abc")), a);
        assert_eq!(a.to_vec(), b"abc".to_vec());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn debug_escapes() {
        let a = Bytes::from_static(b"a\n");
        assert_eq!(format!("{a:?}"), "b\"a\\n\"");
    }
}
